// Reproduces Figure 1: accuracy of performance contracts for all fourteen
// (NF, packet-class) scenarios, in instruction count (IC) and memory access
// count (MA). The paper reports a maximum over-estimation of 7.5% (IC) and
// 7.6% (MA) for typical classes, and 2.36% / 3.03% for the pathological
// *1 classes.
//
// Usage: fig1_ic_ma [--no-coalesce]
//   --no-coalesce   ablation: keep one contract entry per path (tighter,
//                   less legible), showing the cost of coalescing.
#include <cstdio>
#include <cstring>

#include "core/experiments.h"
#include "support/bench.h"
#include "support/strings.h"

using namespace bolt;

int main(int argc, char** argv) {
  core::BoltOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-coalesce") == 0) options.coalesce = false;
  }

  std::printf("Figure 1 — contract accuracy, IC and MA, all scenarios\n");
  std::printf("(coalescing %s)\n\n", options.coalesce ? "on" : "off — ablation");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Scenario", "Predicted IC", "Measured IC", "IC over",
                  "Predicted MA", "Measured MA", "MA over", "Paths"});

  double worst_ic = 0.0, worst_ma = 0.0;
  double worst_ic_patho = 0.0, worst_ma_patho = 0.0;
  // All fourteen scenarios sweep concurrently; rows come back in paper order.
  support::BenchTimer sweep_timer;
  const std::vector<core::ScenarioResult> results =
      core::run_all_scenarios(options);
  const double sweep_ms = sweep_timer.elapsed_ms();
  for (const core::ScenarioResult& r : results) {
    const std::string& id = r.id;
    char ic_over[32], ma_over[32];
    std::snprintf(ic_over, sizeof ic_over, "%+.2f%%",
                  (r.ic_overestimate() - 1.0) * 100.0);
    std::snprintf(ma_over, sizeof ma_over, "%+.2f%%",
                  (r.ma_overestimate() - 1.0) * 100.0);
    rows.push_back({r.id, support::with_commas(r.predicted_ic),
                    support::with_commas(static_cast<std::int64_t>(r.measured_ic)),
                    ic_over, support::with_commas(r.predicted_ma),
                    support::with_commas(static_cast<std::int64_t>(r.measured_ma)),
                    ma_over, std::to_string(r.total_paths)});
    const bool pathological = id == "NAT1" || id == "Br1" || id == "LB1";
    auto& wic = pathological ? worst_ic_patho : worst_ic;
    auto& wma = pathological ? worst_ma_patho : worst_ma;
    wic = std::max(wic, r.ic_overestimate() - 1.0);
    wma = std::max(wma, r.ma_overestimate() - 1.0);
  }

  std::printf("%s\n", support::render_table(rows).c_str());
  std::printf("Max over-estimation, typical classes:      IC %+.2f%%  MA %+.2f%%"
              "  (paper: 7.5%% / 7.6%%)\n",
              worst_ic * 100.0, worst_ma * 100.0);
  std::printf("Max over-estimation, pathological classes: IC %+.2f%%  MA %+.2f%%"
              "  (paper: 2.36%% / 3.03%%)\n",
              worst_ic_patho * 100.0, worst_ma_patho * 100.0);

  support::BenchReport report("fig1_ic_ma");
  report.metric("sweep_ms", sweep_ms, "ms");
  report.metric("worst_ic_over_pct", worst_ic * 100.0, "%");
  report.metric("worst_ma_over_pct", worst_ma * 100.0, "%");
  report.metric("worst_ic_over_patho_pct", worst_ic_patho * 100.0, "%");
  report.metric("worst_ma_over_patho_pct", worst_ma_patho * 100.0, "%");
  return 0;
}
