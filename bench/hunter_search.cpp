// Hunter + minimiser cost profile.
//
// The hunt is a CI gate (`bolt_cli hunt` exits 1 on a find), so its cost
// IS its deployability: a hunt too slow to run per-commit protects
// nothing. Three measurements, archived in BENCH_hunter_search.json when
// BOLT_BENCH_JSON is set:
//
//  1. Seeded find: wall time for the hunt to locate the injected
//     epoch-straddle fault on the NAT, plus the (deterministic) replay
//     and generation counts.
//  2. Minimisation: wall time and oracle replays to shrink the find to
//     its 1-minimal witness, plus the witness size — the headline
//     artifact a human reads.
//  3. Clean sweep: replays/sec over the full default budget with the bug
//     off — the steady-state cost of hunting on every commit.
//
// The counts are pure functions of the seed, so they are gated: a change
// in `minimized_packets` or `hunt_seeded_replays` means the search or the
// minimiser changed behaviour, not the host.
#include <cstdio>

#include "adversary/adversary.h"
#include "adversary/hunter.h"
#include "adversary/minimize.h"
#include "core/bolt.h"
#include "core/targets.h"
#include "support/bench.h"

using namespace bolt;

namespace {

constexpr int kReps = 3;
constexpr std::uint64_t kSeed = 7;

adversary::HunterOptions hunter_options(bool inject_bug) {
  adversary::HunterOptions opts;
  opts.seed = kSeed;
  opts.adversary.seed = kSeed;
  opts.monitor.inject_straddle_bug = inject_bug;
  return opts;
}

}  // namespace

int main() {
  support::BenchReport bench("hunter_search");

  perf::PcvRegistry reg;
  core::NfTarget target;
  core::make_named_target("nat", reg, target);
  core::ContractGenerator gen(reg);
  const core::GenerationResult generated = gen.generate(target.analysis());

  // --- 1. seeded find ----------------------------------------------------
  double find_seconds = 1e300;
  adversary::HunterResult found;
  for (int rep = 0; rep < kReps; ++rep) {
    support::BenchTimer timer;
    found = adversary::hunt("nat", generated.contract, reg,
                            hunter_options(true), &generated.path_reports);
    find_seconds = std::min(find_seconds, timer.elapsed_ms() / 1000.0);
  }
  if (!found.violation_found) {
    std::fprintf(stderr, "bench: seeded hunt failed to find the fault!\n");
    return 1;
  }
  std::printf("seeded hunt (NAT, straddle fault): found in generation %zu, "
              "%llu replays, %.3f s\n",
              found.violation_generation,
              static_cast<unsigned long long>(found.replays), find_seconds);
  bench.metric("hunt_seeded_seconds", find_seconds, "s");
  bench.metric("hunt_seeded_replays", static_cast<double>(found.replays),
               "replays");
  bench.metric("hunt_find_generation",
               static_cast<double>(found.violation_generation), "gen");

  // --- 2. minimisation ---------------------------------------------------
  double min_seconds = 1e300;
  adversary::MinimizeResult minimized;
  for (int rep = 0; rep < kReps; ++rep) {
    adversary::MinimizeOptions mopts;
    mopts.adversary = hunter_options(true).adversary;
    mopts.monitor = hunter_options(true).monitor;
    support::BenchTimer timer;
    minimized = adversary::minimize("nat", generated.contract, reg,
                                    found.best.packets, mopts);
    min_seconds = std::min(min_seconds, timer.elapsed_ms() / 1000.0);
  }
  std::printf("minimise: %zu -> %zu packets, %llu oracle replays, %.3f s "
              "(1-minimal: %s)\n",
              minimized.original_packets, minimized.minimized_packets,
              static_cast<unsigned long long>(minimized.replays), min_seconds,
              minimized.one_minimal ? "yes" : "no");
  bench.metric("minimize_seconds", min_seconds, "s");
  bench.metric("minimize_replays", static_cast<double>(minimized.replays),
               "replays");
  bench.metric("minimized_packets",
               static_cast<double>(minimized.minimized_packets), "packets");

  // --- 3. clean full-budget sweep ----------------------------------------
  double clean_seconds = 1e300;
  adversary::HunterResult clean;
  for (int rep = 0; rep < kReps; ++rep) {
    support::BenchTimer timer;
    clean = adversary::hunt("nat", generated.contract, reg,
                            hunter_options(false), &generated.path_reports);
    clean_seconds = std::min(clean_seconds, timer.elapsed_ms() / 1000.0);
  }
  if (clean.violation_found || clean.divergence_found) {
    std::fprintf(stderr, "bench: clean hunt found a violation!\n");
    return 1;
  }
  const double replays_per_sec =
      clean_seconds > 0 ? static_cast<double>(clean.replays) / clean_seconds
                        : 0.0;
  std::printf("clean hunt: %llu replays in %.3f s (%.1f replays/s)\n",
              static_cast<unsigned long long>(clean.replays), clean_seconds,
              replays_per_sec);
  bench.metric("hunt_clean_seconds", clean_seconds, "s");
  bench.metric("hunt_clean_replays_per_sec", replays_per_sec, "replays/s");
  return 0;
}
