// Reproduces the paper's §5.1 hardware-model validation (P1/P2/P3):
// three traversal programs with the same instruction mix but different
// memory behaviour show how much of the cycle over-estimation is the
// conservative hardware model's fault.
//
//   P1 — non-contiguously allocated linked list (random dependent misses):
//        no prefetch, no MLP -> the model is nearly exact (paper: ~5%).
//   P2 — contiguously allocated linked list (sequential dependent misses):
//        prefetching helps, MLP does not (paper: ~6x over).
//   P3 — array (sequential independent misses): both help (paper: ~9x).
#include <cstdio>

#include "core/bolt.h"
#include "core/runner.h"
#include "nf/framework.h"
#include "nf/micro.h"
#include "support/strings.h"

using namespace bolt;

namespace {

struct Probe {
  const char* id;
  const char* description;
  double paper_ratio;
  ir::Program program;
  std::vector<std::uint64_t> scratch;
};

void run(Probe& probe) {
  // Contract (predicted cycles) via the BOLT pipeline.
  perf::PcvRegistry reg;
  dslib::MethodTable no_methods;
  core::BoltOptions opts;
  opts.framework = nf::framework_none();
  opts.executor.max_loop_trips = 1u << 20;
  opts.executor.max_steps_per_path = 50'000'000;
  opts.executor.scratch_init = probe.scratch;
  core::ContractGenerator generator(reg, opts);
  core::NfAnalysis analysis{probe.id, {&probe.program}, &no_methods};
  const auto generated = generator.generate(analysis);
  const std::int64_t predicted =
      generated.contract.entries().front().perf.get(perf::Metric::kCycles)
          .eval(perf::PcvBinding{});

  // Measured cycles on the realistic testbed simulator (cold caches: these
  // probes stream far more data than any cache level retains).
  hw::RealisticSim testbed;
  ir::InterpreterOptions iopts;
  iopts.sink = &testbed;
  iopts.max_steps = 100'000'000;
  ir::Interpreter interp(probe.program, nullptr, iopts);
  interp.scratch() = probe.scratch;
  net::Packet packet(std::vector<std::uint8_t>(60, 0), 1'000'000'000);
  testbed.begin_packet();
  interp.run(packet);
  const std::uint64_t measured = testbed.packet_cycles();

  std::printf("%-3s %-52s predicted %-13s measured %-13s ratio %5.2f  (paper ~%.2fx)\n",
              probe.id, probe.description,
              support::with_commas(predicted).c_str(),
              support::with_commas(static_cast<std::int64_t>(measured)).c_str(),
              static_cast<double>(predicted) / static_cast<double>(measured),
              probe.paper_ratio);
}

}  // namespace

int main() {
  std::printf("P1/P2/P3 — how much of the cycle gap is the hardware model\n\n");
  constexpr std::size_t kNodes = 16'384;

  // P1: nodes scattered 1 KiB apart over a 16 MiB footprint (beyond L3).
  Probe p1{"P1", "non-contiguous linked list (random dependent misses)", 1.05,
           nf::MicroTraversal::chase_program(kNodes, kNodes * 128),
           nf::MicroTraversal::scattered_list(kNodes, 128, 0xbeef)};
  run(p1);

  // P2: nodes back to back, one per cache line: a dependent line stream.
  Probe p2{"P2", "contiguous linked list (prefetch helps, MLP cannot)", 6.0,
           nf::MicroTraversal::chase_program(kNodes, kNodes * 8),
           nf::MicroTraversal::contiguous_list(kNodes)};
  run(p2);

  // P3: plain array walk, one element per line: independent line stream.
  Probe p3{"P3", "array walk (prefetch and MLP both help)", 9.0,
           nf::MicroTraversal::array_program(kNodes, 8, kNodes * 8),
           std::vector<std::uint64_t>(kNodes * 8, 1)};
  run(p3);

  std::printf(
      "\nThe more the memory behaviour defeats the hardware's hidden\n"
      "machinery (P1), the more accurate the conservative model becomes;\n"
      "the more the hardware can overlap (P3), the larger the gap — the\n"
      "paper's argument that the cycle over-estimation is a *model*\n"
      "limitation, not a contract limitation.\n");
  return 0;
}
