// google-benchmark microbenchmarks of the stateful library itself: how fast
// the *reproduction* executes (host-side), as opposed to the metered costs
// the contracts describe. Useful for keeping the analysis pipeline and the
// experiment harnesses fast.
#include <benchmark/benchmark.h>

#include "dslib/flow_table.h"
#include "dslib/lpm.h"
#include "dslib/maglev.h"
#include "dslib/port_allocator.h"
#include "net/flow.h"
#include "support/random.h"

using namespace bolt;

namespace {

void BM_FlowTableGetHit(benchmark::State& state) {
  dslib::FlowTable table({4096, 1'000'000'000'000ULL, 1, 0});
  ir::CostMeter meter;
  for (std::uint64_t k = 0; k < 2048; ++k) table.put(k, k, 0, meter);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.get(key, meter));
    key = (key + 1) & 2047;
  }
}
BENCHMARK(BM_FlowTableGetHit);

void BM_FlowTablePutUpdate(benchmark::State& state) {
  dslib::FlowTable table({4096, 1'000'000'000'000ULL, 1, 0});
  ir::CostMeter meter;
  for (std::uint64_t k = 0; k < 2048; ++k) table.put(k, k, 0, meter);
  std::uint64_t key = 0;
  std::uint64_t now = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.put(key, key, now++, meter));
    key = (key + 1) & 2047;
  }
}
BENCHMARK(BM_FlowTablePutUpdate);

void BM_FlowTableChurn(benchmark::State& state) {
  dslib::FlowTable table({4096, 1'000'000ULL, 1, 0});
  ir::CostMeter meter;
  std::uint64_t key = 0;
  std::uint64_t now = 1'000'000'000;
  for (auto _ : state) {
    table.put(key, key, now, meter);
    ++key;
    now += 1'000;
    benchmark::DoNotOptimize(table.expire(now, meter));
  }
}
BENCHMARK(BM_FlowTableChurn);

void BM_LpmTrieLookup(benchmark::State& state) {
  dslib::LpmTrie trie;
  support::Rng rng(7);
  for (int i = 0; i < 1024; ++i) {
    const int len = static_cast<int>(rng.range(8, 28));
    const std::uint32_t mask = ~((1u << (32 - len)) - 1);
    trie.insert(static_cast<std::uint32_t>(rng.next()) & mask, len,
                static_cast<std::uint16_t>(i & 0xff));
  }
  ir::CostMeter meter;
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup(addr, meter));
    addr = addr * 2654435761u + 12345u;
  }
}
BENCHMARK(BM_LpmTrieLookup);

void BM_LpmDirLookup(benchmark::State& state) {
  dslib::LpmDir24_8 lpm;
  support::Rng rng(7);
  for (int i = 0; i < 1024; ++i) {
    const int len = static_cast<int>(rng.range(8, 30));
    const std::uint32_t mask = ~((1u << (32 - len)) - 1);
    lpm.insert(static_cast<std::uint32_t>(rng.next()) & mask, len,
               static_cast<std::uint16_t>(i & 0xff));
  }
  ir::CostMeter meter;
  std::uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpm.lookup(addr, meter));
    addr = addr * 2654435761u + 12345u;
  }
}
BENCHMARK(BM_LpmDirLookup);

void BM_MaglevSelect(benchmark::State& state) {
  dslib::MaglevRing ring({16, 4099, 5'000'000'000ULL});
  ring.all_alive(1);
  ir::CostMeter meter;
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.select_alive(key++, 2, meter));
  }
}
BENCHMARK(BM_MaglevSelect);

void BM_AllocatorA(benchmark::State& state) {
  dslib::PortAllocatorA alloc(1024, 4096);
  ir::CostMeter meter;
  for (auto _ : state) {
    const auto r = alloc.alloc(meter);
    alloc.free(r.port, meter);
  }
}
BENCHMARK(BM_AllocatorA);

void BM_AllocatorB_HighOccupancy(benchmark::State& state) {
  dslib::PortAllocatorB alloc(1024, 4096);
  ir::CostMeter meter;
  for (int i = 0; i < 4000; ++i) alloc.alloc(meter);
  for (auto _ : state) {
    const auto r = alloc.alloc(meter);
    alloc.free(r.port, meter);
  }
}
BENCHMARK(BM_AllocatorB_HighOccupancy);

}  // namespace
