// Reproduces Table 4: the MAC bridge's performance contract, in the
// paper's three display rows — known source MAC, unknown source MAC without
// rehashing, and unknown source MAC with rehashing. Instructions are
// expressed over the PCVs e (expired entries), c (hash collisions),
// t (bucket traversals) and o (table occupancy).
#include <cstdio>

#include "core/bolt.h"
#include "core/scenarios.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  perf::PcvRegistry reg;
  const core::NfInstance bridge =
      core::make_bridge(reg, core::default_bridge_config());
  core::ContractGenerator generator(reg);
  const core::GenerationResult result = generator.generate(bridge.analysis());

  std::printf("Table 4 — bridge performance contract (instructions)\n\n");

  // The paper displays unicast traffic rows; pick the unicast-hit flavour
  // of each learn case (the worst of hit/miss is the same shape).
  struct Row {
    const char* paper_label;
    const char* class_key;
  };
  const Row rows[] = {
      {"Known Source MAC",
       "unicast | bridge.expire=expire,bridge.learn=known,bridge.lookup=hit"},
      {"Unknown Source MAC; No Rehashing",
       "unicast | bridge.expire=expire,bridge.learn=new,bridge.lookup=hit"},
      {"Unknown Source MAC; Rehashing",
       "unicast | bridge.expire=expire,bridge.learn=rehash,bridge.lookup=hit"},
  };

  std::vector<std::vector<std::string>> table;
  table.push_back({"Traffic Type", "Instructions"});
  for (const Row& row : rows) {
    const perf::ContractEntry& entry = result.contract.require(row.class_key);
    table.push_back(
        {row.paper_label,
         entry.perf.get(perf::Metric::kInstructions).str(reg)});
  }
  std::printf("%s\n", support::render_table(table).c_str());

  std::printf("Paper's Table 4 for comparison:\n");
  std::printf("  Known Source MAC                  245*e + 144*c + 36*t + 82*e*c + 19*e*t + 882\n");
  std::printf("  Unknown Source MAC; No Rehashing  245*e + 144*c + 50*t + 82*e*c + 19*e*t + 918\n");
  std::printf("  Unknown Source MAC; Rehashing     ... + 124*o + 14*t*o + 984069\n\n");
  std::printf("Same PCVs, same term structure (linear e/c/t, e*c and e*t cross\n"
              "terms, and the rehash row's o and t*o terms plus a large constant);\n"
              "coefficients differ because the instruction unit is our IR.\n\n");

  std::printf("Full generated contract (%zu input classes):\n\n",
              result.contract.entries().size());
  std::printf("%s\n", result.contract.str(reg, perf::Metric::kInstructions).c_str());
  return 0;
}
