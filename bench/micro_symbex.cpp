// google-benchmark microbenchmarks of the analysis machinery: solver
// throughput and end-to-end contract generation latency per NF. These
// bound how long "recompute the contract after an NF change" takes in a
// developer workflow.
#include <benchmark/benchmark.h>

#include "core/bolt.h"
#include "core/scenarios.h"
#include "symbex/solver.h"

using namespace bolt;

namespace {

void BM_SolverHeaderConstraints(benchmark::State& state) {
  symbex::SymbolTable syms;
  const auto et = syms.fresh("ethertype", 16);
  const auto vi = syms.fresh("ver_ihl", 8);
  const auto port = syms.fresh("dst_port", 16);
  using symbex::Expr;
  using symbex::ExprOp;
  std::vector<symbex::ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, Expr::symbol(et), Expr::constant(0x0800)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kShr, Expr::symbol(vi), Expr::constant(4)),
                   Expr::constant(4)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kAnd, Expr::symbol(vi), Expr::constant(0xf)),
                   Expr::constant(5)),
      Expr::binary(ExprOp::kOr,
                   Expr::binary(ExprOp::kLtU, Expr::symbol(port), Expr::constant(1024)),
                   Expr::binary(ExprOp::kEq, Expr::symbol(port), Expr::constant(7000))),
  };
  symbex::Solver solver(syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(cs));
  }
}
BENCHMARK(BM_SolverHeaderConstraints);

void BM_SolverUnsatDetection(benchmark::State& state) {
  symbex::SymbolTable syms;
  const auto x = syms.fresh("x", 8);
  using symbex::Expr;
  using symbex::ExprOp;
  const auto masked =
      Expr::binary(ExprOp::kAnd, Expr::symbol(x), Expr::constant(0xf));
  std::vector<symbex::ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, masked, Expr::constant(5)),
      Expr::binary(ExprOp::kNe, masked, Expr::constant(5)),
  };
  symbex::Solver solver(syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(cs));
  }
}
BENCHMARK(BM_SolverUnsatDetection);

void BM_GenerateContract_SimpleLpm(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_simple_lpm(reg);
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_SimpleLpm);

void BM_GenerateContract_Bridge(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf =
        core::make_bridge(reg, core::default_bridge_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Bridge);

void BM_GenerateContract_Nat(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_nat(reg, core::default_nat_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Nat);

void BM_GenerateContract_Lb(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_lb(reg, core::default_lb_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Lb);

}  // namespace
