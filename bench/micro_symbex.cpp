// google-benchmark microbenchmarks of the analysis machinery: solver
// throughput and end-to-end contract generation latency per NF. These
// bound how long "recompute the contract after an NF change" takes in a
// developer workflow.
//
// BM_GenerateContract_Chain is the NF-chain contract benchmark the perf
// trajectory gates on: it reports `contract_gen_speedup` relative to the
// recorded pre-optimization baseline (the commit before hash-consed
// expressions, witness-carrying incremental feasibility, and the
// work-stealing executor landed), plus the executor's solver-call and
// feasibility-cache counters.
#include <benchmark/benchmark.h>

#include <chrono>

#include "core/bolt.h"
#include "core/scenarios.h"
#include "core/targets.h"
#include "nf/firewall.h"
#include "symbex/solver.h"

using namespace bolt;

namespace {

void BM_SolverHeaderConstraints(benchmark::State& state) {
  symbex::SymbolTable syms;
  const auto et = syms.fresh("ethertype", 16);
  const auto vi = syms.fresh("ver_ihl", 8);
  const auto port = syms.fresh("dst_port", 16);
  using symbex::Expr;
  using symbex::ExprOp;
  std::vector<symbex::ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, Expr::symbol(et), Expr::constant(0x0800)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kShr, Expr::symbol(vi), Expr::constant(4)),
                   Expr::constant(4)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kAnd, Expr::symbol(vi), Expr::constant(0xf)),
                   Expr::constant(5)),
      Expr::binary(ExprOp::kOr,
                   Expr::binary(ExprOp::kLtU, Expr::symbol(port), Expr::constant(1024)),
                   Expr::binary(ExprOp::kEq, Expr::symbol(port), Expr::constant(7000))),
  };
  symbex::Solver solver(syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(cs));
  }
}
BENCHMARK(BM_SolverHeaderConstraints);

void BM_SolverUnsatDetection(benchmark::State& state) {
  symbex::SymbolTable syms;
  const auto x = syms.fresh("x", 8);
  using symbex::Expr;
  using symbex::ExprOp;
  const auto masked =
      Expr::binary(ExprOp::kAnd, Expr::symbol(x), Expr::constant(0xf));
  std::vector<symbex::ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, masked, Expr::constant(5)),
      Expr::binary(ExprOp::kNe, masked, Expr::constant(5)),
  };
  symbex::Solver solver(syms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(cs));
  }
}
BENCHMARK(BM_SolverUnsatDetection);

void BM_GenerateContract_SimpleLpm(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_simple_lpm(reg);
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_SimpleLpm);

void BM_GenerateContract_Bridge(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf =
        core::make_bridge(reg, core::default_bridge_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Bridge);

void BM_GenerateContract_Nat(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_nat(reg, core::default_nat_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Nat);

void BM_GenerateContract_Lb(benchmark::State& state) {
  for (auto _ : state) {
    perf::PcvRegistry reg;
    const core::NfInstance nf = core::make_lb(reg, core::default_lb_config());
    core::ContractGenerator gen(reg);
    benchmark::DoNotOptimize(gen.generate(nf.analysis()));
  }
}
BENCHMARK(BM_GenerateContract_Lb);

/// Single-thread contract generation for the paper's firewall -> router
/// chain (Table 5c) — the developer edit-compile-loop latency this PR's
/// hot-path work targets. Regenerating this chain's contract on the
/// pre-optimization commit took kPrePrChainNs on the reference machine
/// (measured with this same benchmark body); `contract_gen_speedup` tracks
/// how much faster the current tree is. The acceptance floor is 3x.
void BM_GenerateContract_Chain(benchmark::State& state) {
  // Pre-PR per-generation wall time, nanoseconds (see comment above).
  static constexpr double kPrePrChainNs = 413'000.0;

  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;
  core::NfAnalysis chain;
  chain.name = "firewall+router";
  chain.programs = {&firewall, &router};
  chain.methods = &no_methods;

  const std::size_t threads = state.range(0);
  double gen_ns = 0;
  std::uint64_t iters = 0;
  symbex::ExecutorStats last_stats;
  for (auto _ : state) {
    perf::PcvRegistry reg;
    core::BoltOptions options;
    options.threads = threads;
    core::ContractGenerator gen(reg, options);
    const auto t0 = std::chrono::steady_clock::now();
    const core::GenerationResult result = gen.generate(chain);
    const auto t1 = std::chrono::steady_clock::now();
    gen_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    ++iters;
    last_stats = result.executor_stats;
    benchmark::DoNotOptimize(result.total_paths);
  }
  const double per_iter = iters == 0 ? 0 : gen_ns / static_cast<double>(iters);
  state.counters["contract_gen_ns"] = per_iter;
  if (threads == 1 && per_iter > 0) {
    state.counters["contract_gen_speedup"] = kPrePrChainNs / per_iter;
  }
  state.counters["solver_calls"] = static_cast<double>(last_stats.solver_calls);
  state.counters["feas_cache_hits"] =
      static_cast<double>(last_stats.feas_cache_hits);
  state.counters["feas_cache_misses"] =
      static_cast<double>(last_stats.feas_cache_misses);
  state.counters["steal_count"] = static_cast<double>(last_stats.steal_count);
}
BENCHMARK(BM_GenerateContract_Chain)->Arg(1)->Arg(8);

}  // namespace
