// Reproduces the paper's running example (§2.1/§2.2): the simplified LPM
// router of Algorithm 1 with its Patricia-trie lpmGet, whose contracts are
// the paper's Tables 1 and 2. Also validates the generated contract against
// real executions across all matched prefix lengths.
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/packet_builder.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  perf::PcvRegistry reg;
  const core::NfInstance router = core::make_simple_lpm(reg);
  auto& trie = router.state_as<dslib::LpmTrieState>().trie();
  // Nested routes along the alternating-bit pattern: one per prefix length,
  // so every matched length l in 1..32 is exercisable.
  constexpr std::uint32_t kPattern = 0xaaaaaaaau;
  auto masked = [](int len) {
    return len == 0 ? 0u
                    : (kPattern & (len == 32 ? ~0u : ~((1u << (32 - len)) - 1)));
  };
  for (int len = 1; len <= 32; ++len) {
    trie.insert(masked(len), len, static_cast<std::uint16_t>(len));
  }

  // Analyse at the NF-only level, like the paper's stylised example
  // ("assumes the packet processing framework has zero impact").
  core::BoltOptions opts;
  opts.framework = nf::framework_none();
  core::ContractGenerator generator(reg, opts);
  const auto generated = generator.generate(router.analysis());

  std::printf("Tables 1/2 — the running example's contracts\n\n");
  std::printf("Table 2 analogue — lpmGet method contract: 4*l + 2 instructions,"
              " l + 1 accesses\n\n");
  std::printf("Table 1 analogue — whole-router contract:\n\n%s\n",
              generated.contract.str_all(reg).c_str());

  // Validate against real executions for every matched length.
  auto runner = router.make_runner(nf::framework_none());
  core::Distiller distiller(*runner, nullptr, &router.methods);
  std::vector<net::Packet> packets;
  for (int len = 1; len <= 32; ++len) {
    // An address that matches exactly the length-len route: follow the
    // pattern for len bits, then diverge (so the trie walk breaks at l=len).
    std::uint32_t addr = masked(len);
    if (len < 32) {
      const std::uint32_t next_bit = (kPattern >> (31 - len)) & 1;
      if (next_bit == 0) addr |= 1u << (31 - len);
    }
    net::PacketBuilder b;
    b.ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1), net::Ipv4Address{addr})
        .udp(1, 2)
        .timestamp_ns(1'000'000'000 + std::uint64_t(len));
    packets.push_back(b.build());
  }
  const auto report = distiller.run(packets);

  const perf::PcvId l = reg.require("l");
  const auto& valid = generated.contract.require("valid | lpm.get=lookup");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"matched l", "predicted IC", "measured IC", "predicted MA",
                  "measured MA"});
  for (const auto& rec : report.records) {
    rows.push_back(
        {std::to_string(rec.pcvs.get(l)),
         support::with_commas(
             valid.perf.get(perf::Metric::kInstructions).eval(rec.pcvs)),
         support::with_commas(static_cast<std::int64_t>(rec.instructions)),
         support::with_commas(
             valid.perf.get(perf::Metric::kMemoryAccesses).eval(rec.pcvs)),
         support::with_commas(static_cast<std::int64_t>(rec.mem_accesses))});
  }
  std::printf("Per-prefix-length validation (prediction must dominate):\n%s\n",
              support::render_table(rows).c_str());
  std::printf(
      "The paper's Table 1 is 4*l+5 / l+3 for valid packets and 2 / 1 for\n"
      "invalid packets; ours differs only by the stateless glue constants\n"
      "(our parse is a few IR instructions, theirs was stylised to 2).\n");
  return 0;
}
