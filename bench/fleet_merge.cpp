// Fleet mode costs: streaming-monitor overhead vs the batch engine, and
// the merger's throughput over a fleet's serialised partials.
//
// Archived in BENCH_fleet_merge.json when BOLT_BENCH_JSON is set:
//
//  1. stream_monitor_pps — packets/sec through the single-threaded
//     StreamMonitor (feed() per packet, windows closing as timestamps
//     advance), next to the single-threaded batch engine on the same
//     trace. The streaming shape exists for daemons, not throughput, but
//     it must stay within shouting distance of the batch path.
//
//  2. fleet_merge_ms / fleet_merge_partials_per_s — wall time to fold a
//     4-instance fleet's window+final partials (parse from JSON included,
//     the same work `bolt_cli merge` does per spool file) into the
//     fleet-wide report and delta stream.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/follow.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "obs/fleet.h"
#include "support/bench.h"

using namespace bolt;

namespace {

constexpr int kReps = 3;

template <typename F>
double best_seconds(int reps, F&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    support::BenchTimer timer;
    body();
    best = std::min(best, timer.elapsed_ms() / 1000.0);
  }
  return best;
}

}  // namespace

int main() {
  support::BenchReport bench("fleet_merge");

  perf::PcvRegistry reg;
  core::NfTarget target;
  core::make_named_target("nat", reg, target);
  core::ContractGenerator gen(reg);
  const core::GenerationResult result = gen.generate(target.analysis());

  net::ZipfSpec spec;
  spec.flow_pool = 2048;
  spec.skew = 1.1;
  spec.packet_count = 200'000;
  const std::vector<net::Packet> packets = net::zipf_traffic(spec);

  monitor::MonitorOptions opts;
  opts.threads = 1;
  opts.pipeline = false;
  opts.epoch_ns = 10'000'000;  // 10 ms: the short trace spans many windows
  opts.delta_every = 1;

  // --- streaming vs batch, single-threaded -------------------------------
  const double batch_s = best_seconds(kReps, [&] {
    monitor::MonitorEngine engine(result.contract, reg, opts);
    obs::RunObservations observations;
    engine.run(packets, monitor::MonitorEngine::named_factory("nat"), nullptr,
               &observations);
  });
  const double stream_s = best_seconds(kReps, [&] {
    monitor::StreamMonitor sm(result.contract, reg,
                              monitor::MonitorEngine::named_factory("nat"),
                              opts);
    for (const net::Packet& p : packets) sm.feed(p);
    sm.finish();
  });
  const double n = static_cast<double>(packets.size());
  std::printf("monitor (NAT, %zu packets, 10 ms windows):\n", packets.size());
  std::printf("  batch engine, 1 thread:  %10.0f pps\n", n / batch_s);
  std::printf("  stream monitor (feed):   %10.0f pps  (%.2fx of batch)\n",
              n / stream_s, batch_s / stream_s);
  bench.metric("monitor_batch_1thread_pps", n / batch_s, "packets/s");
  bench.metric("stream_monitor_pps", n / stream_s, "packets/s");
  bench.metric("stream_vs_batch_ratio", batch_s / stream_s, "x",
               /*gate=*/false);

  // --- fleet merge throughput --------------------------------------------
  // Serialise a 4-instance fleet's partials once, then time parse + merge
  // (the per-file work 'bolt_cli merge' does, minus the disk).
  constexpr std::uint32_t kInstances = 4;
  std::vector<std::string> entry_names;
  for (const auto& e : result.contract.entries()) {
    entry_names.push_back(e.input_class);
  }
  std::vector<std::string> window_files;
  std::vector<std::string> final_files;
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    monitor::FleetOptions fleet;
    fleet.instance = i;
    fleet.instances = kInstances;
    std::vector<obs::WindowPartial> mine;
    auto on_window = [&](const monitor::ClosedWindow& cw) {
      if (cw.stats->packets == 0) return;
      obs::WindowPartial wp;
      wp.nf = result.contract.nf_name();
      wp.instance = i;
      wp.instances = kInstances;
      wp.window = cw.window;
      wp.window_ns = cw.window_ns;
      for (std::size_t e = 0; e < cw.accums->size(); ++e) {
        if ((*cw.accums)[e].packets == 0) continue;
        wp.classes.push_back(entry_names[e]);
        wp.accums.push_back((*cw.accums)[e]);
      }
      wp.packets = cw.stats->packets;
      wp.epoch_sweeps = cw.stats->epoch_sweeps;
      wp.expired_idle = cw.stats->expired_idle;
      wp.high_water = cw.stats->high_water;
      window_files.push_back(obs::window_partial_to_json(wp));
    };
    monitor::StreamMonitor sm(result.contract, reg,
                              monitor::MonitorEngine::named_factory("nat"),
                              opts, fleet, on_window);
    for (const net::Packet& p : packets) sm.feed(p);
    const monitor::StreamResult res = sm.finish();
    obs::FinalPartial fp;
    fp.nf = result.contract.nf_name();
    fp.instance = i;
    fp.instances = kInstances;
    fp.stream_packets = sm.packets_fed();
    fp.partitions = opts.partitions;
    fp.cycles_checked = opts.check_cycles;
    fp.epoch_ns = opts.epoch_ns;
    fp.max_offenders = opts.max_offenders;
    fp.entries = entry_names;
    fp.residents = res.report.state_residents;
    fp.state_tracked = res.report.state_tracked;
    final_files.push_back(obs::final_partial_to_json(fp));
  }
  std::uint64_t sink = 0;
  const double merge_s = best_seconds(kReps, [&] {
    std::vector<obs::WindowPartial> windows;
    for (const std::string& s : window_files) {
      windows.push_back(obs::parse_window_partial(s));
    }
    std::vector<obs::FinalPartial> finals;
    for (const std::string& s : final_files) {
      finals.push_back(obs::parse_final_partial(s));
    }
    const obs::FleetMergeResult merged =
        obs::merge_partials(windows, finals, {});
    sink += merged.report.attributed;
  });
  const double files =
      static_cast<double>(window_files.size() + final_files.size());
  std::printf("\nfleet merge (%u instances, %zu window partials):\n",
              kInstances, window_files.size());
  std::printf("  parse + merge: %8.2f ms  (%6.0f partials/s, sink %llu)\n",
              merge_s * 1000.0, files / merge_s,
              static_cast<unsigned long long>(sink));
  bench.metric("fleet_merge_ms", merge_s * 1000.0, "ms");
  bench.metric("fleet_merge_partials_per_s", files / merge_s, "partials/s");
  return 0;
}
