// Reproduces Figure 4 and Tables 7/8 (§5.3, "Debugging configuration
// bottlenecks"): VigNAT stamped flows at one-second granularity, so every
// flow that should have expired during a second expired *at once* when the
// second rolled over — a long per-packet latency tail affecting ~1.5% of
// packets. The contract pointed at the dominant PCV `e`; the Distiller's
// expired-flow distribution confirmed the batching; raising the stamp
// granularity to a millisecond removed the tail.
#include <cstdio>

#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

namespace {

core::DistillerReport run_nat(std::uint64_t granularity_ns,
                              perf::PcvRegistry& reg,
                              std::vector<net::Packet> packets) {
  auto cfg = core::default_nat_config();
  cfg.flow.stamp_granularity_ns = granularity_ns;
  cfg.flow.ttl_ns = 1'000'000'000;  // 1 s flow lifetime
  const core::NfInstance nat = core::make_nat(reg, cfg);
  hw::RealisticSim testbed;
  auto runner = nat.make_runner(nf::framework_full(), &testbed);
  core::Distiller distiller(*runner, &testbed, &nat.methods);
  return distiller.run(packets);
}

void print_ccdf(const core::DistillerReport& report, const char* label) {
  std::printf("latency CCDF (%s): cycles -> P[latency > x]\n", label);
  const auto ccdf = report.ccdf_of("cycles");
  // Sample the CCDF at decades of interest.
  const double probes[] = {0.5, 0.1, 0.05, 0.015, 0.005, 0.001, 0.0002};
  for (const double p : probes) {
    std::uint64_t cycles = 0;
    for (const auto& [value, frac] : ccdf) {
      if (frac >= p) cycles = value;
    }
    std::printf("  P > %.4f at ~%s cycles\n", p,
                support::with_commas(static_cast<std::int64_t>(cycles)).c_str());
  }
}

}  // namespace

int main() {
  // Churning traffic at 100 kpps over a 3 s window: ~1000 flows/s retire
  // and later expire. Whether they expire smoothly or in bursts depends
  // only on the timestamp granularity — the bug under investigation.
  net::ChurnSpec spec;
  spec.active_flows = 1024;
  spec.churn = 0.01;
  spec.packet_count = 300'000;
  spec.timing.gap_ns = 10'000;
  spec.in_port = 0;

  std::printf("Figure 4 + Tables 7/8 — VigNAT expiry-batching bug\n\n");

  perf::PcvRegistry reg1;
  const auto original =
      run_nat(1'000'000'000, reg1, net::churn_traffic(spec));
  std::printf("== Second granularity (original VigNAT) ==\n");
  std::printf("\nTable 7 — Distiller report, expired flows per packet:\n%s\n",
              original.density_table(reg1.require("e"), reg1).c_str());
  print_ccdf(original, "second granularity");

  perf::PcvRegistry reg2;
  const auto fixed = run_nat(1'000'000, reg2, net::churn_traffic(spec));
  std::printf("\n== Millisecond granularity (fixed) ==\n");
  std::printf("\nTable 8 — Distiller report, expired flows per packet:\n%s\n",
              fixed.density_table(reg2.require("e"), reg2).c_str());
  print_ccdf(fixed, "millisecond granularity");

  // Headline numbers.
  const std::uint64_t tail_orig = original.worst_measured("cycles");
  const std::uint64_t tail_fixed = fixed.worst_measured("cycles");
  std::uint64_t emax_orig = 0, emax_fixed = 0;
  for (const auto& r : original.records) {
    emax_orig = std::max(emax_orig, r.pcvs.get(reg1.require("e")));
  }
  for (const auto& r : fixed.records) {
    emax_fixed = std::max(emax_fixed, r.pcvs.get(reg2.require("e")));
  }
  std::printf("\nWorst per-packet latency: %s cycles (second) vs %s cycles "
              "(millisecond)\n",
              support::with_commas(static_cast<std::int64_t>(tail_orig)).c_str(),
              support::with_commas(static_cast<std::int64_t>(tail_fixed)).c_str());
  std::printf("Worst expiry batch: e = %llu (second) vs e = %llu (millisecond)\n",
              static_cast<unsigned long long>(emax_orig),
              static_cast<unsigned long long>(emax_fixed));
  std::printf(
      "\nPaper's shape: second granularity batches hundreds of expiries on\n"
      "one unlucky packet (Table 7: ~1.5%% of packets see e >= 64); raising\n"
      "the granularity spreads expiry almost uniformly (Table 8: e <= 3)\n"
      "and eliminates the latency tail at the cost of a slightly higher\n"
      "median (more packets do a little expiry work).\n");
  return 0;
}
