// Reproduces Table 3: accuracy of *execution-cycle* contracts for all
// fourteen scenarios. The contract bound uses the conservative hardware
// model (per-instruction worst case + everything-is-DRAM unless proven L1);
// "measured" comes from the realistic testbed simulator. The paper reports
// ratios of about 2-4x for typical classes, ~9x for the pathological
// (unconstrained) classes, and 1.5-1.9x for the LPM.
#include <cstdio>

#include "core/experiments.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  std::printf("Table 3 — execution-cycle contract accuracy\n\n");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"NF+Class", "Predicted Bound", "Measured Cycles", "Ratio"});

  for (const std::string& id : core::all_scenario_ids()) {
    perf::PcvRegistry reg;
    core::Scenario scenario = core::make_scenario(id, reg);
    const core::ScenarioResult r = core::run_scenario(scenario, reg);
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f", r.cycles_ratio());
    rows.push_back(
        {r.id, support::with_commas(r.predicted_cycles),
         support::with_commas(static_cast<std::int64_t>(r.measured_cycles)),
         ratio});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
  std::printf(
      "Paper's shape: pathological (NAT1/Br1/LB1) ~9x, typical 1.9-4.1x,\n"
      "LPM lowest (1.4-1.9x). Absolute values differ (scaled tables,\n"
      "simulated testbed); the ordering and rough factors should hold.\n");
  return 0;
}
