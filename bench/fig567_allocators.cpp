// Reproduces Figures 5, 6 and 7 (§5.3, "Picking the appropriate data
// structure implementation"): the NAT instantiated with port allocator A
// (doubly-linked free list, flat costs) vs allocator B (bitmap scan, cheap
// at low occupancy, expensive at high occupancy).
//
//  * Low churn: long-lived flows fill the table, so B's allocation scans
//    get long — A wins (paper: predicted 30%, measured ~33%).
//  * High churn: few live flows, B's scan hits immediately and its
//    constants are lighter — B wins (paper: predicted 8%, measured ~10%).
//
// "Predicted" numbers come from the two NATs' cycle contracts evaluated at
// the Distiller-reported PCVs; "measured" from the realistic testbed
// simulator's per-packet latency CDF over the new-flow packets.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

namespace {

struct AllocatorOutcome {
  std::int64_t predicted_cycles = 0;   // new-flow class at distilled PCVs
  std::vector<std::uint64_t> new_flow_latencies;  // measured, sorted
  double mean_latency = 0;
};

AllocatorOutcome evaluate(dslib::NatState::AllocatorKind kind, bool low_churn) {
  perf::PcvRegistry reg;
  auto cfg = core::default_nat_config();
  cfg.flow.capacity = 1024;
  cfg.allocator = kind;
  // Low churn: long-lived flows keep the table (and B's bitmap) nearly
  // full — allocations scan far. High churn: flows die within
  // milliseconds, occupancy stays low — B's scan hits immediately.
  cfg.flow.ttl_ns = low_churn ? 50'000'000ULL : 4'000'000ULL;
  const core::NfInstance nat = core::make_nat(reg, cfg);

  core::ContractGenerator generator(reg);
  const auto generated = generator.generate(nat.analysis());

  net::ChurnSpec spec;
  spec.active_flows = low_churn ? 990 : 64;
  spec.churn = low_churn ? 0.002 : 0.5;
  spec.packet_count = 200'000;  // a 2 s window at 100 kpps
  spec.in_port = 0;
  auto packets = net::churn_traffic(spec);

  hw::RealisticSim testbed;
  auto runner = nat.make_runner(nf::framework_full(), &testbed);
  core::Distiller distiller(*runner, &testbed, &nat.methods);
  const core::DistillerReport report = distiller.run(packets);

  AllocatorOutcome out;
  const std::string new_flow_key =
      "internal_new | nat.expire=expire,nat.lookup_int=miss,nat.add_flow=ok";
  const perf::ContractEntry* entry = generated.contract.find(new_flow_key);
  if (entry != nullptr) {
    out.predicted_cycles = entry->perf.get(perf::Metric::kCycles)
                               .eval(report.worst_binding_for(new_flow_key));
  }
  for (const auto& rec : report.records) {
    if (rec.class_key == new_flow_key) {
      out.new_flow_latencies.push_back(rec.cycles);
    }
  }
  std::sort(out.new_flow_latencies.begin(), out.new_flow_latencies.end());
  if (!out.new_flow_latencies.empty()) {
    double sum = 0;
    for (const std::uint64_t v : out.new_flow_latencies) {
      sum += static_cast<double>(v);
    }
    out.mean_latency = sum / static_cast<double>(out.new_flow_latencies.size());
  }
  return out;
}

void print_cdf(const char* label, const std::vector<std::uint64_t>& a_lat,
               const std::vector<std::uint64_t>& b_lat) {
  std::printf("%s — measured latency CDF of new-flow packets (cycles)\n",
              label);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"percentile", "Allocator A", "Allocator B"});
  for (const double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    auto at = [&](const std::vector<std::uint64_t>& v) {
      if (v.empty()) return std::string("-");
      return support::with_commas(static_cast<std::int64_t>(
          v[std::min(v.size() - 1, static_cast<std::size_t>(
                                       p * static_cast<double>(v.size())))]));
    };
    char pct[16];
    std::snprintf(pct, sizeof pct, "p%.0f", p * 100);
    rows.push_back({pct, at(a_lat), at(b_lat)});
  }
  std::printf("%s\n", support::render_table(rows).c_str());
}

}  // namespace

int main() {
  std::printf("Figures 5/6/7 — NAT port allocator A vs B\n\n");

  // --- Figure 5: predicted cycles per scenario ---
  const auto a_low = evaluate(dslib::NatState::AllocatorKind::kA, true);
  const auto b_low = evaluate(dslib::NatState::AllocatorKind::kB, true);
  const auto a_high = evaluate(dslib::NatState::AllocatorKind::kA, false);
  const auto b_high = evaluate(dslib::NatState::AllocatorKind::kB, false);

  std::vector<std::vector<std::string>> fig5;
  fig5.push_back({"Scenario", "Allocator A (pred.)", "Allocator B (pred.)",
                  "Predicted delta"});
  char delta_low[32], delta_high[32];
  std::snprintf(delta_low, sizeof delta_low, "B %+.0f%%",
                100.0 * (static_cast<double>(b_low.predicted_cycles) /
                             static_cast<double>(a_low.predicted_cycles) -
                         1.0));
  std::snprintf(delta_high, sizeof delta_high, "B %+.0f%%",
                100.0 * (static_cast<double>(b_high.predicted_cycles) /
                             static_cast<double>(a_high.predicted_cycles) -
                         1.0));
  fig5.push_back({"Low churn", support::with_commas(a_low.predicted_cycles),
                  support::with_commas(b_low.predicted_cycles), delta_low});
  fig5.push_back({"High churn", support::with_commas(a_high.predicted_cycles),
                  support::with_commas(b_high.predicted_cycles), delta_high});
  std::printf("Figure 5 — predicted new-flow cycles\n%s\n",
              support::render_table(fig5).c_str());

  // --- Figures 6/7: measured CDFs ---
  print_cdf("Figure 6 — low churn (A should win)", a_low.new_flow_latencies,
            b_low.new_flow_latencies);
  print_cdf("Figure 7 — high churn (B should win)", a_high.new_flow_latencies,
            b_high.new_flow_latencies);

  const double low_gain = (b_low.mean_latency / a_low.mean_latency - 1.0);
  const double high_gain = (a_high.mean_latency / b_high.mean_latency - 1.0);
  std::printf("Low churn:  B's mean new-flow latency is %+.1f%% vs A"
              "  (paper: A wins by ~33%%, predicted 30%%)\n", low_gain * 100.0);
  std::printf("High churn: A's mean new-flow latency is %+.1f%% vs B"
              "  (paper: B wins by ~10%%, predicted 8%%)\n", high_gain * 100.0);
  return 0;
}
