// Reproduces Table 5 and Figure 3 (§5.2, "Ability to reason about the
// performance of a network"): contracts for a stateless firewall (drops IP
// options) and a static router (pays 79*n+646-style linear cost for IP
// options), then the contract for the chain firewall -> router.
//
// The point: the firewall *masks* the router's worst case. Naively adding
// the two individual worst cases wildly over-predicts; BOLT's joint chain
// analysis (§3.4) prunes the incompatible path pairs and lands close to
// the measurement.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/runner.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "nf/firewall.h"
#include "support/bench.h"
#include "support/strings.h"
#include "support/thread_pool.h"

using namespace bolt;

namespace {

std::vector<net::Packet> chain_workload() {
  std::vector<net::Packet> out;
  support::Rng rng(42);
  net::TimestampNs ts = 1'000'000'000;
  for (int i = 0; i < 4000; ++i) {
    net::PacketBuilder b;
    b.ipv4(net::Ipv4Address::from_octets(198, 18, 0, 1),
           net::Ipv4Address{static_cast<std::uint32_t>(rng.next())})
        .udp(static_cast<std::uint16_t>(rng.range(1, 1023)), 80)
        .timestamp_ns(ts);
    if (rng.chance(0.3)) b.ip_timestamp_option(2);  // options -> firewall drop
    out.push_back(b.build());
    ts += 10'000;
  }
  return out;
}

std::int64_t worst(const perf::Contract& contract, perf::Metric m,
                   const perf::PcvBinding& bind) {
  return contract.worst_case(m, bind);
}

}  // namespace

int main() {
  perf::PcvRegistry reg;
  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;
  core::ContractGenerator generator(reg);

  // --- individual contracts (Table 5a / 5b) ---
  core::NfAnalysis fw_analysis{"firewall", {&firewall}, &no_methods};
  core::NfAnalysis rt_analysis{"static_router", {&router}, &no_methods};
  const auto fw = generator.generate(fw_analysis);
  const auto rt = generator.generate(rt_analysis);

  std::printf("Table 5a — firewall contract (instructions)\n\n%s\n",
              fw.contract.str(reg, perf::Metric::kInstructions).c_str());
  std::printf("Table 5b — static router contract (instructions)\n\n%s\n",
              rt.contract.str(reg, perf::Metric::kInstructions).c_str());

  // --- chain contract (Table 5c) ---
  core::NfAnalysis chain_analysis{"firewall+router", {&firewall, &router},
                                  &no_methods};
  const auto chain = generator.generate(chain_analysis);
  std::printf("Table 5c — firewall + router chain contract (instructions)\n\n%s\n",
              chain.contract.str(reg, perf::Metric::kInstructions).c_str());

  // --- Figure 3: naive addition vs composite vs measured ---
  // PCV binding: options packets carry up to 10 option words (n = ihl - 5).
  perf::PcvBinding bind;
  if (reg.contains("n")) bind.set(reg.require("n"), 10);

  const std::int64_t naive_ic =
      worst(fw.contract, perf::Metric::kInstructions, bind) +
      worst(rt.contract, perf::Metric::kInstructions, bind);
  const std::int64_t naive_ma =
      worst(fw.contract, perf::Metric::kMemoryAccesses, bind) +
      worst(rt.contract, perf::Metric::kMemoryAccesses, bind);
  const std::int64_t comp_ic =
      worst(chain.contract, perf::Metric::kInstructions, bind);
  const std::int64_t comp_ma =
      worst(chain.contract, perf::Metric::kMemoryAccesses, bind);

  // Measure the chain on mixed traffic.
  core::NfRunner runner({&firewall, &router}, nullptr, [] {
    ir::InterpreterOptions o;
    nf::apply_framework(o, nf::framework_full());
    return o;
  }());
  core::Distiller distiller(runner);
  auto packets = chain_workload();
  const core::DistillerReport report = distiller.run(packets);
  const std::uint64_t measured_ic = report.worst_measured("instructions");
  const std::uint64_t measured_ma = report.worst_measured("mem_accesses");

  std::printf("Figure 3 — composite NF, worst-case prediction vs measurement\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"", "Predicted IC", "Measured IC", "Predicted MA",
                  "Measured MA"});
  rows.push_back({"Naive-Add", support::with_commas(naive_ic), "-",
                  support::with_commas(naive_ma), "-"});
  rows.push_back({"Composite-Bolt", support::with_commas(comp_ic),
                  support::with_commas(static_cast<std::int64_t>(measured_ic)),
                  support::with_commas(comp_ma),
                  support::with_commas(static_cast<std::int64_t>(measured_ma))});
  std::printf("%s\n", support::render_table(rows).c_str());
  std::printf(
      "Naive addition over-predicts by %.0f%% (it charges the router's\n"
      "option-processing worst case to packets the firewall already\n"
      "dropped); the composite contract stays within %.1f%% of the\n"
      "measurement — the paper's Figure 3 in numbers.\n",
      100.0 * (static_cast<double>(naive_ic) / static_cast<double>(comp_ic) -
               1.0),
      100.0 * (static_cast<double>(comp_ic) / static_cast<double>(measured_ic) -
               1.0));

  // --- Parallel pipeline: sweep the chain's analysis configurations ---
  // The paper's workflow regenerates contracts under many configurations
  // (framework on/off x coalescing x loop linearisation). Each generation
  // is independent, so the sweep fans out across a thread pool; a heavier
  // solver budget makes each generation a realistic unit of work.
  std::vector<core::BoltOptions> configs;
  for (const bool full_framework : {false, true}) {
    for (const bool coalesce : {false, true}) {
      for (const bool linearize : {false, true}) {
        core::BoltOptions o;
        o.framework = full_framework ? nf::framework_full() : nf::framework_none();
        o.coalesce = coalesce;
        o.linearize_loops = linearize;
        o.threads = 1;  // the sweep is the parallelism
        o.executor.solver.random_probes = 16'000;
        configs.push_back(o);
      }
    }
  }
  constexpr int kGensPerConfig = 25;  // sized so a unit of work is ~10 ms
  auto sweep_ms = [&](std::size_t pool_threads) {
    support::ThreadPool pool(pool_threads);
    std::atomic<std::size_t> total_entries{0};
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {  // min-of-3 to tame scheduler noise
      support::BenchTimer timer;
      pool.parallel_for(0, configs.size(), [&](std::size_t i) {
        for (int g = 0; g < kGensPerConfig; ++g) {
          perf::PcvRegistry sweep_reg;
          core::ContractGenerator sweep_gen(sweep_reg, configs[i]);
          const auto generated = sweep_gen.generate(chain_analysis);
          total_entries.fetch_add(generated.contract.entries().size());
        }
      });
      best = std::min(best, timer.elapsed_ms());
    }
    return best;
  };
  const double ms_1t = sweep_ms(1);
  const double ms_4t = sweep_ms(4);
  const double speedup = ms_1t / ms_4t;
  std::printf(
      "\nParallel pipeline — %zu-configuration chain sweep (min of 3)\n"
      "  1 thread:  %8.2f ms\n"
      "  4 threads: %8.2f ms   speedup %.2fx (hardware threads: %zu)\n",
      configs.size(), ms_1t, ms_4t, speedup, support::resolve_threads(0));

  support::BenchReport bench("fig3_table5_chain");
  bench.metric("naive_ic", static_cast<double>(naive_ic));
  bench.metric("composite_ic", static_cast<double>(comp_ic));
  bench.metric("measured_ic", static_cast<double>(measured_ic));
  bench.metric("naive_ma", static_cast<double>(naive_ma));
  bench.metric("composite_ma", static_cast<double>(comp_ma));
  bench.metric("measured_ma", static_cast<double>(measured_ma));
  bench.metric("sweep_ms_1t", ms_1t, "ms");
  bench.metric("sweep_ms_4t", ms_4t, "ms");
  bench.metric("sweep_speedup_4t", speedup, "x");
  return 0;
}
