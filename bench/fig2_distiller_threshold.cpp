// Reproduces Figure 2 (§5.2, "Understanding the performance of the NF
// under attack"): the Distiller's CCDF of hash-bucket traversals for a
// uniform random workload through the MAC bridge, overlaid with the
// contract's predicted instruction count as a function of the traversal
// count. An operator reads off where to place the rehash-defence threshold:
// high enough that benign traffic (the CCDF tail) almost never crosses it,
// low enough that an attack is cut off quickly.
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  perf::PcvRegistry reg;
  const auto cfg = core::default_bridge_config();
  const core::NfInstance bridge = core::make_bridge(reg, cfg);

  // Contract for the prediction curve.
  core::ContractGenerator generator(reg);
  const core::GenerationResult generated =
      generator.generate(bridge.analysis());

  // Distill a uniform random workload.
  auto runner = bridge.make_runner();
  core::Distiller distiller(*runner, nullptr, &bridge.methods);
  net::BridgeSpec spec;
  spec.stations = 3000;  // enough stations for real chain collisions
  spec.packet_count = 60'000;
  auto packets = net::bridge_traffic(spec);
  const core::DistillerReport report = distiller.run(packets);

  const perf::PcvId t = reg.require("t");
  const perf::PcvId e = reg.require("e");

  // Prediction as a function of traversals: the unknown-source unicast
  // entry (the "learn" path an attacker exercises) evaluated at t, with
  // other PCVs at the workload's observed worst.
  const perf::ContractEntry& entry = generated.contract.require(
      "unicast | bridge.expire=expire,bridge.learn=new,bridge.lookup=hit");
  perf::PcvBinding base = report.worst_binding();

  std::printf("Figure 2 — CCDF of bucket traversals + predicted IC vs t\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"t (traversals)", "CCDF P[T > t]", "Predicted IC at t"});
  const auto ccdf = report.ccdf(t);
  for (std::uint64_t tv = 1; tv <= 8; ++tv) {
    double tail = 0.0;
    for (const auto& [value, frac] : ccdf) {
      if (value <= tv) tail = frac;
    }
    perf::PcvBinding bind = base;
    bind.set(t, tv);
    bind.set(e, 0);  // steady state: no mass expiry in this analysis
    char tail_s[32];
    std::snprintf(tail_s, sizeof tail_s, "%.5f", tail);
    rows.push_back({std::to_string(tv), tail_s,
                    support::with_commas(entry.perf
                                             .get(perf::Metric::kInstructions)
                                             .eval(bind))});
  }
  std::printf("%s\n", support::render_table(rows).c_str());

  // The operator's reading, as in the paper: with the threshold at 6, fewer
  // than ~0.2% of benign packets would ever approach it, and the contract
  // bounds the benign-traffic instruction count.
  double crossing = 0.0;
  for (const auto& [value, frac] : ccdf) {
    if (value <= 6) crossing = frac;
  }
  perf::PcvBinding at6 = base;
  at6.set(t, 6);
  at6.set(e, 0);
  std::printf("With the rehash threshold at 6:\n");
  std::printf("  fraction of benign packets with t > 6: %.4f%%  (paper: <0.2%%)\n",
              crossing * 100.0);
  std::printf("  predicted IC bound for benign traffic:  %s  (paper: 1939)\n",
              support::with_commas(
                  entry.perf.get(perf::Metric::kInstructions).eval(at6))
                  .c_str());
  return 0;
}
