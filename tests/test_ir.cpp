#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/interp.h"
#include "net/packet_builder.h"
#include "net/workload.h"

namespace bolt::ir {
namespace {

net::Packet some_packet() {
  return net::packet_for_tuple(net::tuple_for_index(7), 1'000'000'000, 3);
}

TEST(Builder, EmitsValidProgram) {
  IrBuilder b("t");
  const Reg x = b.imm(5);
  const Reg y = b.imm(6);
  b.forward(b.add(x, y));
  const Program p = b.finish();
  EXPECT_EQ(p.name, "t");
  EXPECT_GE(p.num_regs, 3);
  EXPECT_FALSE(p.disassemble().empty());
}

TEST(Builder, LabelsResolveForward) {
  IrBuilder b("t");
  Label target = b.make_label();
  const Reg c = b.imm(1);
  b.br_true(c, target);
  b.drop();
  b.bind(target);
  b.forward_imm(2);
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.verdict, net::NfVerdict::kForward);
  EXPECT_EQ(r.out_port, 2u);
}

TEST(Interp, AluSemantics) {
  IrBuilder b("alu");
  const Reg a = b.imm(0xff00);
  const Reg c = b.imm(0x0ff0);
  const Reg v = b.bxor(b.band(a, c), b.bor(a, c));  // (a&c)^(a|c) == a^c
  b.forward(v);
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 0xff00u ^ 0x0ff0u);
}

TEST(Interp, ComparisonsAreUnsigned) {
  IrBuilder b("cmp");
  const Reg big = b.imm(~0ULL);
  const Reg one = b.imm(1);
  b.forward(b.gtu(big, one));  // unsigned: max > 1
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 1u);
}

TEST(Interp, PacketLoadsAreBigEndian) {
  IrBuilder b("load");
  b.forward(b.load_pkt_at(12, 2, "ethertype"));
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 0x0800u);
}

TEST(Interp, PacketStoreRoundTrip) {
  IrBuilder b("store");
  b.store_pkt_at(30, b.imm(0xdeadbeef), 4);
  b.forward(b.load_pkt_at(30, 4));
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 0xdeadbeefu);
  // The packet itself was mutated.
  EXPECT_EQ(pkt.bytes()[30], 0xde);
  EXPECT_EQ(pkt.bytes()[33], 0xef);
}

TEST(Interp, PktMetadata) {
  IrBuilder b("meta");
  const Reg len = b.pkt_len();
  const Reg port = b.pkt_port();
  const Reg time = b.pkt_time();
  b.forward(b.add(b.add(len, port), time));
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.out_port, pkt.size() + 3 + 1'000'000'000ULL);
}

TEST(Interp, CountersCountInstructionsAndAccesses) {
  IrBuilder b("count");
  const Reg x = b.load_pkt_at(0, 1);  // imm + load = 2 instr, 1 access
  b.class_tag("tagged");              // zero cost
  b.forward(x);                       // 1 instr
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.instructions, 3u);
  EXPECT_EQ(r.mem_accesses, 1u);
  EXPECT_EQ(r.class_tag_names(), std::vector<std::string>{"tagged"});
}

TEST(Interp, FrameworkCostsAreAdded) {
  IrBuilder b("fw");
  b.drop();
  const Program p = b.finish();
  InterpreterOptions opts;
  opts.rx_instructions = 100;
  opts.rx_accesses = 5;
  opts.drop_instructions = 30;
  opts.drop_accesses = 2;
  Interpreter interp(p, nullptr, opts);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.instructions, 100u + 30u + 1u);  // + the drop instruction
  EXPECT_EQ(r.mem_accesses, 5u + 2u);
}

TEST(Interp, LocalsPersistWithinRun) {
  IrBuilder b("locals");
  const auto slot = b.local("x");
  b.store_local(slot, b.imm(41));
  b.forward(b.add_imm(b.load_local(slot), 1));
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 42u);
}

TEST(Interp, ScratchPersistsAcrossRuns) {
  IrBuilder b("scratch");
  b.set_scratch_slots(4);
  const Reg idx = b.imm(2);
  const Reg old = b.load_mem(idx);
  b.store_mem(idx, b.add_imm(old, 1));
  b.forward(old);
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 0u);
  EXPECT_EQ(interp.run(pkt).out_port, 1u);
  EXPECT_EQ(interp.run(pkt).out_port, 2u);
}

TEST(Interp, LoopTripsAreCounted) {
  IrBuilder b("loop");
  const auto slot = b.local("i");
  b.store_local(slot, b.imm(0));
  Label loop = b.make_label();
  Label done = b.make_label();
  b.bind(loop);
  b.loop_head("n");
  const Reg i = b.load_local(slot);
  b.br_false(b.ltu(i, b.imm(5)), done);
  b.store_local(slot, b.add_imm(i, 1));
  b.jmp(loop);
  b.bind(done);
  b.drop();
  const Program p = b.finish();
  Interpreter interp(p, nullptr);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.loop_trips.at(0), 6u);  // 5 body trips + exit check
}

/// A stub stateful env for interpreter tests.
class StubEnv final : public StatefulEnv {
 public:
  CallOutcome call(std::int64_t method, std::uint64_t arg0, std::uint64_t arg1,
                   const net::Packet&, CostMeter& meter) override {
    meter.metered_instructions(10);
    meter.mem_read(kArenaBase, 8);
    CallOutcome out;
    out.v0 = arg0 + arg1;
    out.v1 = method;
    out.case_label = "stub";
    out.pcvs.set(0, 7);
    return out;
  }
};

TEST(Interp, StatefulCallsFlowThrough) {
  IrBuilder b("call");
  const auto [v0, v1] = b.call(99, b.imm(3), b.imm(4));
  b.forward(b.add(v0, v1));
  const Program p = b.finish();
  StubEnv env;
  Interpreter interp(p, &env);
  net::Packet pkt = some_packet();
  const RunResult r = interp.run(pkt);
  EXPECT_EQ(r.out_port, 3u + 4u + 99u);
  ASSERT_EQ(r.calls.size(), 1u);
  EXPECT_EQ(r.case_label_of(r.calls[0]), "stub");
  EXPECT_EQ(r.pcvs.get(0), 7u);
  // Metered cost is included in totals but not in stateless counters.
  EXPECT_EQ(r.instructions, r.stateless_instructions + 10);
  EXPECT_EQ(r.mem_accesses, r.stateless_accesses + 1);
}

TEST(Program, ValidateRejectsBadRegisters) {
  Program p;
  p.name = "bad";
  p.num_regs = 1;
  Instr ins;
  ins.op = Op::kAdd;
  ins.dst = 0;
  ins.a = 0;
  ins.b = 5;  // out of range
  p.code.push_back(ins);
  EXPECT_DEATH(p.validate(), "register out of range");
}

TEST(Program, ValidateRejectsBadBranchTargets) {
  Program p;
  p.name = "bad";
  p.num_regs = 1;
  Instr ins;
  ins.op = Op::kBr;
  ins.a = 0;
  ins.t = 100;
  ins.f = 0;
  p.code.push_back(ins);
  EXPECT_DEATH(p.validate(), "branch target out of range");
}

TEST(Interp, InfiniteLoopHitsStepBudget) {
  IrBuilder b("inf");
  Label loop = b.make_label();
  b.bind(loop);
  b.jmp(loop);
  const Program p = b.finish();
  InterpreterOptions opts;
  opts.max_steps = 1000;
  Interpreter interp(p, nullptr, opts);
  net::Packet pkt = some_packet();
  EXPECT_DEATH(interp.run(pkt), "step budget");
}

}  // namespace
}  // namespace bolt::ir
