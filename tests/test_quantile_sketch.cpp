// Property tests for perf::QuantileSketch — the determinism and accuracy
// guarantees the monitor's online distribution reporting leans on:
//
//  * Accuracy: for any stream and any q, the estimate is conservative
//    (never below the exact nearest-rank quantile) and within one
//    1/2^kSubBits relative slice above it. Exercised on uniform, Zipf,
//    and adversarial (bucket-boundary, all-equal, bimodal) streams.
//  * Rank consistency: the estimate's bucket straddles the target rank.
//  * Merge-order independence: the sketch of a multiset is identical —
//    byte-for-byte through serialize() — no matter how the stream is
//    split into partitions or in which order the pieces are merged. This
//    is what makes partition-merged monitor reports deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "perf/quantile_sketch.h"
#include "support/random.h"

namespace bolt::perf {
namespace {

constexpr double kQuantiles[] = {0.0, 0.001, 0.01, 0.1, 0.5,
                                 0.9, 0.99,  0.999, 1.0};

std::uint64_t exact_nearest_rank(std::vector<std::uint64_t> sorted, double q) {
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (target == 0) target = 1;
  if (target > sorted.size()) target = sorted.size();
  return sorted[target - 1];
}

void check_accuracy(const std::vector<std::uint64_t>& values) {
  QuantileSketch sketch;
  for (const std::uint64_t v : values) sketch.add(v);
  ASSERT_EQ(sketch.count(), values.size());

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sketch.min(), sorted.front());
  EXPECT_EQ(sketch.max(), sorted.back());

  for (const double q : kQuantiles) {
    const std::uint64_t exact = exact_nearest_rank(sorted, q);
    const std::uint64_t est = sketch.quantile(q);
    // Conservative: never understates the quantile...
    EXPECT_GE(est, exact) << "q=" << q;
    // ...and overstates by at most one relative bucket slice.
    EXPECT_LE(est, exact + (exact >> QuantileSketch::kSubBits) + 1)
        << "q=" << q << " exact=" << exact;
    // Rank consistency: enough recorded values fall at or below the
    // estimate's bucket to cover the target rank.
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(values.size())));
    if (target == 0) target = 1;
    EXPECT_GE(sketch.rank_upper_bound(est), target) << "q=" << q;
  }
}

TEST(QuantileSketch, BucketMappingIsConsistent) {
  // Every value lies within its own bucket's [lo, hi] range, buckets are
  // monotone in the value, and the linear region is exact.
  std::uint64_t probes[] = {0,    1,    2,     63,        64,   65,
                            127,  128,  129,   1000,      4096, 65535,
                            1u << 20,   (1u << 20) + 17,  ~0ull >> 1, ~0ull};
  std::uint32_t last_bucket = 0;
  for (const std::uint64_t v : probes) {
    const std::uint32_t b = QuantileSketch::bucket_of(v);
    EXPECT_LE(QuantileSketch::bucket_lo(b), v) << v;
    EXPECT_GE(QuantileSketch::bucket_hi(b), v) << v;
    EXPECT_GE(b, last_bucket);
    last_bucket = b;
    if (v < (1ull << (QuantileSketch::kSubBits + 1))) {
      EXPECT_EQ(QuantileSketch::bucket_lo(b), v);
      EXPECT_EQ(QuantileSketch::bucket_hi(b), v);
    }
  }
}

TEST(QuantileSketch, EmptyAndSingleton) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  s.add(777);
  for (const double q : kQuantiles) {
    const std::uint64_t est = s.quantile(q);
    EXPECT_GE(est, 777u);
    EXPECT_LE(est, 777 + (777 >> QuantileSketch::kSubBits) + 1);
  }
  EXPECT_EQ(s.min(), 777u);
  EXPECT_EQ(s.max(), 777u);
}

TEST(QuantileSketch, AccuracyOnUniformStream) {
  support::Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.below(100000));
  check_accuracy(values);
}

TEST(QuantileSketch, AccuracyOnZipfLikeStream) {
  // Heavy tail: mostly tiny values, a few enormous ones (the violation
  // margin distribution's natural shape).
  support::Rng rng(11);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t r = rng.below(1000) + 1;
    values.push_back(1'000'000 / (r * r));
  }
  check_accuracy(values);
}

TEST(QuantileSketch, AccuracyOnAdversarialStreams) {
  // All-equal (every quantile is the same point).
  check_accuracy(std::vector<std::uint64_t>(5000, 42));
  check_accuracy(std::vector<std::uint64_t>(5000, 1023));  // near boundary

  // Exact bucket boundaries: powers of two and their neighbours.
  std::vector<std::uint64_t> boundaries;
  for (unsigned e = 0; e < 40; ++e) {
    boundaries.push_back(1ull << e);
    if ((1ull << e) > 0) boundaries.push_back((1ull << e) - 1);
    boundaries.push_back((1ull << e) + 1);
  }
  for (int rep = 0; rep < 30; ++rep) {
    check_accuracy(boundaries);
    boundaries.insert(boundaries.end(), boundaries.begin(),
                      boundaries.begin() + 10);
  }

  // Bimodal with a huge gap (rank walks must not interpolate across it).
  std::vector<std::uint64_t> bimodal;
  for (int i = 0; i < 3000; ++i) bimodal.push_back(10);
  for (int i = 0; i < 1000; ++i) bimodal.push_back(1'000'000'000ull);
  check_accuracy(bimodal);
}

TEST(QuantileSketch, MergeOrderIndependence) {
  support::Rng rng(23);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng.below(1'000'000));
  }

  // Reference: one sketch fed sequentially.
  QuantileSketch reference;
  for (const std::uint64_t v : values) reference.add(v);

  // Partition the same multiset in several different ways, shuffle the
  // parts, and merge in different orders — including unbalanced trees.
  for (const std::size_t parts : {2u, 5u, 16u, 64u}) {
    std::vector<QuantileSketch> shards(parts);
    for (std::size_t i = 0; i < values.size(); ++i) {
      shards[(i * 2654435761u) % parts].add(values[i]);
    }

    // Left fold, forward order.
    QuantileSketch forward;
    for (const auto& s : shards) forward.merge(s);
    // Left fold, reverse order.
    QuantileSketch reverse;
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
      reverse.merge(*it);
    }
    // Pairwise tree merge.
    std::vector<QuantileSketch> tree = shards;
    while (tree.size() > 1) {
      std::vector<QuantileSketch> next;
      for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
        QuantileSketch merged = tree[i];
        merged.merge(tree[i + 1]);
        next.push_back(std::move(merged));
      }
      if (tree.size() % 2 == 1) next.push_back(tree.back());
      tree = std::move(next);
    }

    EXPECT_EQ(forward.serialize(), reference.serialize()) << parts;
    EXPECT_EQ(reverse.serialize(), reference.serialize()) << parts;
    EXPECT_EQ(tree.front().serialize(), reference.serialize()) << parts;
    EXPECT_TRUE(forward == reference);
    EXPECT_TRUE(reverse == reference);
    EXPECT_TRUE(tree.front() == reference);
  }

  // Merging an empty sketch is the identity, both ways.
  QuantileSketch empty;
  QuantileSketch copy = reference;
  copy.merge(empty);
  EXPECT_TRUE(copy == reference);
  empty.merge(reference);
  EXPECT_TRUE(empty == reference);
}

TEST(QuantileSketch, InsertionOrderIndependence) {
  support::Rng rng(31);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.below(50000));

  QuantileSketch in_order;
  for (const std::uint64_t v : values) in_order.add(v);

  std::vector<std::uint64_t> shuffled = values;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }
  QuantileSketch reordered;
  for (const std::uint64_t v : shuffled) reordered.add(v);

  EXPECT_EQ(in_order.serialize(), reordered.serialize());
}

}  // namespace
}  // namespace bolt::perf
