// The adversary's own contract (ISSUE 5 acceptance criteria):
//  * coverage — for every reference NF the synthesised trace reaches at
//    least 90% of the solved contract classes, and unreached classes are
//    enumerated in the gap report;
//  * the loop closes — every packet's pre-attributed class is exactly what
//    the monitor observes on replay (zero mismatches), with no violations
//    (the trace is worst-case, not contract-breaking);
//  * bound consumption — for at least one *stateful* class per NF the
//    measured p99 consumes >= 80% of the contract bound ("the contract
//    says this is the worst case" is a measured fact);
//  * determinism — a fixed seed reproduces the trace byte-for-byte, and
//    replay reports are byte-identical at any shard x thread x grouping
//    combination;
//  * the trace pair (pcap + plan sidecar) round-trips through disk.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/report.h"
#include "adversary/trace.h"
#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/report.h"
#include "net/pcap.h"
#include "perf/contract_io.h"
#include "support/io.h"

namespace bolt::adversary {
namespace {

struct Loop {
  perf::PcvRegistry reg;
  perf::Contract contract{""};
  AdversarialTrace trace;
  GapReport gap;
};

AdversaryOptions small_options(std::uint64_t seed = 1) {
  AdversaryOptions opts;
  opts.seed = seed;
  opts.probes_per_class = 8;
  return opts;
}

Loop run_loop(const std::string& nf, const AdversaryOptions& opts) {
  Loop loop;
  core::NfTarget target;
  EXPECT_TRUE(core::make_named_target(nf, loop.reg, target));
  core::ContractGenerator gen(loop.reg);
  const core::GenerationResult generated = gen.generate(target.analysis());
  loop.contract = generated.contract;
  loop.trace = adversarial_traffic(nf, loop.contract, loop.reg, opts,
                                   &generated.path_reports);
  loop.gap = replay(loop.trace, loop.contract, loop.reg);
  return loop;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) out += "\n  " + n;
  return out;
}

class AdversaryLoop : public ::testing::TestWithParam<const char*> {};

TEST_P(AdversaryLoop, ReachesNinetyPercentOfClasses) {
  const Loop loop = run_loop(GetParam(), small_options());
  ASSERT_GT(loop.gap.classes_total, 0u);
  // ceil(0.9 * total) without floating point.
  const std::size_t need = (loop.gap.classes_total * 9 + 9) / 10;
  EXPECT_GE(loop.gap.classes_reached, need)
      << "unreached classes:" << joined(loop.gap.unreached_classes());
}

TEST_P(AdversaryLoop, EveryPacketLandsWhereThePlanSaid) {
  const Loop loop = run_loop(GetParam(), small_options());
  EXPECT_EQ(loop.gap.mismatched, 0u)
      << "first mismatch at packet " << loop.gap.first_mismatch;
  EXPECT_EQ(loop.gap.monitor.unattributed, 0u);
  // Worst-case traffic saturates bounds, it does not break them.
  EXPECT_EQ(loop.gap.monitor.violations, 0u) << loop.gap.str();
  // Every emitted packet was planned against a real contract entry.
  for (const PacketPlan& plan : loop.trace.plans) {
    ASSERT_NE(plan.entry, kNoEntry);
  }
}

TEST_P(AdversaryLoop, AStatefulClassConsumesEightyPercentOfItsBound) {
  const Loop loop = run_loop(GetParam(), small_options());
  std::uint64_t best = 0;
  std::string best_class;
  for (const ClassGap& g : loop.gap.classes) {
    // Stateful classes carry method cases ("nat.lookup_int=hit", ...).
    if (g.input_class.find('=') == std::string::npos) continue;
    if (g.best_p99_util_pm > best) {
      best = g.best_p99_util_pm;
      best_class = g.input_class;
    }
  }
  EXPECT_GE(best, 800u) << "best stateful class: " << best_class << "\n"
                        << loop.gap.str();
}

TEST_P(AdversaryLoop, TraceIsByteDeterministicForAFixedSeed) {
  const std::string nf = GetParam();
  Loop a = run_loop(nf, small_options(3));
  Loop b = run_loop(nf, small_options(3));
  EXPECT_EQ(net::serialize_pcap(a.trace.packets),
            net::serialize_pcap(b.trace.packets));
  ASSERT_EQ(a.trace.plans.size(), b.trace.plans.size());
  for (std::size_t i = 0; i < a.trace.plans.size(); ++i) {
    EXPECT_EQ(a.trace.plans[i].entry, b.trace.plans[i].entry);
    EXPECT_EQ(a.trace.plans[i].predicted, b.trace.plans[i].predicted);
  }
  // A different seed still covers the same classes (different flows).
  Loop c = run_loop(nf, small_options(17));
  EXPECT_EQ(c.gap.classes_reached, a.gap.classes_reached);
  EXPECT_EQ(c.gap.mismatched, 0u);
}

TEST_P(AdversaryLoop, ReplayReportsAreIdenticalAtAnyShardThreadGrouping) {
  const Loop loop = run_loop(GetParam(), small_options());
  const std::string baseline = monitor::report_to_json(loop.gap.monitor);
  const std::string gap_baseline = gap_report_to_json(loop.gap);
  for (const std::size_t shards : {std::size_t(1), std::size_t(3)}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
      for (const monitor::ShardGrouping grouping :
           {monitor::ShardGrouping::kRoundRobin,
            monitor::ShardGrouping::kLongestQueueFirst}) {
        monitor::MonitorOptions opts;
        opts.shards = shards;
        opts.threads = threads;
        opts.grouping = grouping;
        const GapReport gap =
            replay(loop.trace, loop.contract, loop.reg, opts);
        EXPECT_EQ(monitor::report_to_json(gap.monitor), baseline)
            << "shards=" << shards << " threads=" << threads
            << " grouping=" << static_cast<int>(grouping);
        EXPECT_EQ(gap_report_to_json(gap), gap_baseline);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReferenceNfs, AdversaryLoop,
                         ::testing::Values("bridge", "nat", "lb", "lpm"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(AdversaryLoopWide, AllNamedTargetsSynthesizeAndClose) {
  // Beyond the reference four: every registered target must survive the
  // loop with full attribution agreement and nonzero coverage.
  for (const char* const nf :
       {"nat-b", "lpm-simple", "firewall", "router", "fw+router"}) {
    SCOPED_TRACE(nf);
    const Loop loop = run_loop(nf, small_options());
    EXPECT_GT(loop.gap.classes_reached, 0u);
    EXPECT_EQ(loop.gap.mismatched, 0u);
    EXPECT_EQ(loop.gap.monitor.violations, 0u);
  }
}

TEST(AdversaryStoredContract, StoredArtifactDrivesTheSameLoop) {
  // Operator flow: bounds come from the stored golden artifact, witnesses
  // are regenerated in-process; the loop must close identically.
  perf::PcvRegistry reg;
  const perf::Contract stored = perf::load_contract(
      std::string(BOLT_TEST_DATA_DIR) + "/contract_nat.json", reg);
  const AdversarialTrace trace =
      adversarial_traffic("nat", stored, reg, small_options());
  const GapReport gap = replay(trace, stored, reg);
  EXPECT_EQ(gap.classes_reached, gap.classes_total);
  EXPECT_EQ(gap.mismatched, 0u);
}

TEST(AdversaryTraceIo, TracePairRoundTripsThroughDisk) {
  const Loop loop = run_loop("lpm", small_options());
  const std::string prefix = ::testing::TempDir() + "/adversary_trace";
  ASSERT_TRUE(save_trace(prefix, loop.trace));
  const AdversarialTrace reloaded = load_trace(prefix);

  EXPECT_EQ(reloaded.nf, loop.trace.nf);
  EXPECT_EQ(reloaded.contract_nf, loop.trace.contract_nf);
  EXPECT_EQ(reloaded.partitions, loop.trace.partitions);
  EXPECT_EQ(reloaded.epoch_ns, loop.trace.epoch_ns);
  ASSERT_EQ(reloaded.packets.size(), loop.trace.packets.size());
  for (std::size_t i = 0; i < reloaded.packets.size(); ++i) {
    EXPECT_EQ(std::vector<std::uint8_t>(reloaded.packets[i].bytes().begin(),
                                        reloaded.packets[i].bytes().end()),
              std::vector<std::uint8_t>(loop.trace.packets[i].bytes().begin(),
                                        loop.trace.packets[i].bytes().end()));
    EXPECT_EQ(reloaded.packets[i].in_port(), loop.trace.packets[i].in_port());
    EXPECT_EQ(reloaded.packets[i].timestamp_ns(),
              loop.trace.packets[i].timestamp_ns());
    EXPECT_EQ(reloaded.plans[i].entry, loop.trace.plans[i].entry);
    EXPECT_EQ(reloaded.plans[i].predicted, loop.trace.plans[i].predicted);
  }
  // A reloaded trace replays to the identical report.
  const GapReport direct = replay(loop.trace, loop.contract, loop.reg);
  const GapReport from_disk = replay(reloaded, loop.contract, loop.reg);
  EXPECT_EQ(monitor::report_to_json(from_disk.monitor),
            monitor::report_to_json(direct.monitor));
}

// load_trace hardening (ISSUE 9 satellite): a corrupt or mismatched trace
// pair must die loudly — with the offending construct and its byte offset
// in the message — never load skewed data. Each test patches one defect
// into an otherwise-valid pair.
class AdversaryTraceIoDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    loop_ = run_loop("lpm", small_options());
    prefix_ = ::testing::TempDir() + "/trace_death";
    ASSERT_TRUE(save_trace(prefix_, loop_.trace));
    sidecar_ = support::read_file_or_die(prefix_ + ".json", "sidecar");
  }

  /// Rewrites the sidecar with `from` (which must occur) replaced by `to`.
  void corrupt(const std::string& from, const std::string& to) {
    const std::size_t pos = sidecar_.find(from);
    ASSERT_NE(pos, std::string::npos) << "sidecar lacks '" << from << "'";
    std::string patched = sidecar_;
    patched.replace(pos, from.size(), to);
    ASSERT_TRUE(support::write_file(prefix_ + ".json", patched));
  }

  /// Replaces the (numeric) value of `key` with `value`.
  void patch_value(const std::string& key, const std::string& value) {
    std::string patched = sidecar_;
    const std::size_t pos = patched.find(key);
    ASSERT_NE(pos, std::string::npos) << "sidecar lacks '" << key << "'";
    const std::size_t val = pos + key.size();
    const std::size_t end = patched.find(',', val);
    ASSERT_NE(end, std::string::npos);
    patched.replace(val, end - val, value);
    ASSERT_TRUE(support::write_file(prefix_ + ".json", patched));
  }

  Loop loop_;
  std::string prefix_;
  std::string sidecar_;
};

TEST_F(AdversaryTraceIoDeathTest, UnsupportedSchemaVersionIsRejected) {
  corrupt("\"version\":1", "\"version\":99");
  EXPECT_DEATH(load_trace(prefix_), "unsupported trace schema version");
}

TEST_F(AdversaryTraceIoDeathTest, ZeroPartitionsAreRejected) {
  patch_value("\"partitions\":", "0");
  EXPECT_DEATH(load_trace(prefix_), "partitions must be positive");
}

TEST_F(AdversaryTraceIoDeathTest, NegativeEpochIsRejected) {
  patch_value("\"epoch_ns\":", "-5");
  EXPECT_DEATH(load_trace(prefix_), "epoch_ns must be non-negative");
}

TEST_F(AdversaryTraceIoDeathTest, PlanEntryBelowMinusOneIsRejected) {
  // Prefixing the first plan's entry with "-7" makes it <= -70.
  corrupt("\"packets\":[{\"entry\":", "\"packets\":[{\"entry\":-7");
  EXPECT_DEATH(load_trace(prefix_), "packet plan entry below -1");
}

TEST_F(AdversaryTraceIoDeathTest, PlanEntryBeyondClassTableIsRejected) {
  // Prefixing with "9" makes the first entry >= 9; lpm declares 3 classes.
  corrupt("\"packets\":[{\"entry\":", "\"packets\":[{\"entry\":9");
  EXPECT_DEATH(load_trace(prefix_), "out of range");
}

TEST_F(AdversaryTraceIoDeathTest, InPortBeyondSixteenBitsIsRejected) {
  corrupt("\"in_port\":", "\"in_port\":99999");
  EXPECT_DEATH(load_trace(prefix_), "outside the 16-bit port range");
}

TEST_F(AdversaryTraceIoDeathTest, SidecarOutrunningThePcapIsRejected) {
  // Drop the last pcap packet: the sidecar's final plan has no packet.
  std::vector<net::Packet> pkts = loop_.trace.packets;
  ASSERT_FALSE(pkts.empty());
  pkts.pop_back();
  net::write_pcap(prefix_ + ".pcap", pkts);
  EXPECT_DEATH(load_trace(prefix_), "has no pcap packet");
}

TEST_F(AdversaryTraceIoDeathTest, PcapOutrunningTheSidecarIsRejected) {
  // One fewer plan than packets: the pair no longer matches.
  AdversarialTrace shorter = loop_.trace;
  ASSERT_FALSE(shorter.plans.empty());
  shorter.plans.pop_back();
  ASSERT_TRUE(save_trace(prefix_, shorter));
  // save_trace writes len(plans) sidecar entries but keeps every packet.
  EXPECT_DEATH(load_trace(prefix_), "packet plans but the pcap carries");
}

TEST(AdversaryAmplification, CollisionChainRaisesPredictedTraversalCost) {
  // The NAT collision chain must produce internal_known probes whose
  // predicted bound at the observed PCVs strictly exceeds the plain
  // repeat-flow probes' (the chain walk amplifies t).
  const Loop loop = run_loop("nat", small_options());
  std::size_t known_entry = ~std::size_t(0);
  for (std::size_t e = 0; e < loop.contract.entries().size(); ++e) {
    if (loop.contract.entries()[e].input_class.rfind("internal_known", 0) ==
        0) {
      known_entry = e;
    }
  }
  ASSERT_NE(known_entry, ~std::size_t(0));
  std::int64_t min_pred = 0, max_pred = 0;
  bool first = true;
  for (const PacketPlan& plan : loop.trace.plans) {
    if (plan.entry != known_entry) continue;
    const std::int64_t ic = plan.predicted[0];
    if (first || ic < min_pred) min_pred = ic;
    if (first || ic > max_pred) max_pred = ic;
    first = false;
  }
  ASSERT_FALSE(first);
  EXPECT_GT(max_pred, min_pred)
      << "collision-chain probes should cost more than first-touch probes";
}

}  // namespace
}  // namespace bolt::adversary
