#include <gtest/gtest.h>

#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/pcap.h"
#include "net/workload.h"

namespace bolt::core {
namespace {

class DistillerTest : public ::testing::Test {
 protected:
  DistillerTest() : bridge(make_bridge(reg, default_bridge_config())) {
    runner = bridge.make_runner();
  }

  DistillerReport distill(std::vector<net::Packet> packets) {
    Distiller distiller(*runner, nullptr, &bridge.methods);
    return distiller.run(packets);
  }

  perf::PcvRegistry reg;
  NfInstance bridge;
  std::unique_ptr<NfRunner> runner;
};

TEST_F(DistillerTest, RecordsOnePerPacket) {
  net::BridgeSpec spec;
  spec.packet_count = 123;
  const auto report = distill(net::bridge_traffic(spec));
  EXPECT_EQ(report.records.size(), 123u);
}

TEST_F(DistillerTest, ClassKeysMatchContractEntries) {
  ContractGenerator gen(reg);
  const auto generated = gen.generate(bridge.analysis());
  net::BridgeSpec spec;
  spec.packet_count = 500;
  spec.broadcast_fraction = 0.3;
  const auto report = distill(net::bridge_traffic(spec));
  for (const auto& rec : report.records) {
    EXPECT_NE(generated.contract.find(rec.class_key), nullptr)
        << rec.class_key;
  }
}

TEST_F(DistillerTest, HistogramCountsSumToPackets) {
  net::BridgeSpec spec;
  spec.packet_count = 400;
  const auto report = distill(net::bridge_traffic(spec));
  const auto hist = report.histogram(reg.require("t"));
  std::uint64_t total = 0;
  for (const auto& [value, count] : hist) total += count;
  EXPECT_EQ(total, 400u);
}

TEST_F(DistillerTest, DensitySumsToHundredPercent) {
  net::BridgeSpec spec;
  spec.packet_count = 300;
  const auto report = distill(net::bridge_traffic(spec));
  double total = 0;
  for (const auto& [value, pct] : report.density(reg.require("t"))) {
    total += pct;
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST_F(DistillerTest, CcdfIsMonotoneDecreasing) {
  net::BridgeSpec spec;
  spec.packet_count = 2000;
  spec.stations = 600;
  const auto report = distill(net::bridge_traffic(spec));
  const auto ccdf = report.ccdf(reg.require("t"));
  ASSERT_FALSE(ccdf.empty());
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_GT(ccdf[i].first, ccdf[i - 1].first);
    EXPECT_LE(ccdf[i].second, ccdf[i - 1].second);
  }
  EXPECT_NEAR(ccdf.back().second, 0.0, 1e-9);  // nothing above the max
}

TEST_F(DistillerTest, CcdfOfMeasuredFields) {
  net::BridgeSpec spec;
  spec.packet_count = 500;
  const auto report = distill(net::bridge_traffic(spec));
  for (const char* field : {"instructions", "mem_accesses"}) {
    const auto ccdf = report.ccdf_of(field);
    ASSERT_FALSE(ccdf.empty()) << field;
    for (std::size_t i = 1; i < ccdf.size(); ++i) {
      EXPECT_LE(ccdf[i].second, ccdf[i - 1].second);
    }
  }
}

TEST_F(DistillerTest, WorstBindingDominatesEveryRecord) {
  net::BridgeSpec spec;
  spec.packet_count = 800;
  const auto report = distill(net::bridge_traffic(spec));
  const perf::PcvBinding worst = report.worst_binding();
  for (const auto& rec : report.records) {
    for (const auto& [id, v] : rec.pcvs.values()) {
      EXPECT_GE(worst.get(id), v);
    }
  }
}

TEST_F(DistillerTest, WorstBindingForClassIgnoresOtherClasses) {
  net::BridgeSpec spec;
  spec.packet_count = 800;
  spec.broadcast_fraction = 0.5;
  const auto report = distill(net::bridge_traffic(spec));
  const perf::PcvBinding bcast = report.worst_binding_for("broadcast");
  const perf::PcvBinding all = report.worst_binding();
  for (const auto& [id, v] : bcast.values()) {
    EXPECT_LE(v, all.get(id));
  }
}

TEST_F(DistillerTest, WorstMeasuredMatchesManualScan) {
  net::BridgeSpec spec;
  spec.packet_count = 300;
  const auto report = distill(net::bridge_traffic(spec));
  std::uint64_t manual = 0;
  for (const auto& rec : report.records) {
    manual = std::max(manual, rec.instructions);
  }
  EXPECT_EQ(report.worst_measured("instructions"), manual);
}

TEST_F(DistillerTest, CyclesAreZeroWithoutASink) {
  net::BridgeSpec spec;
  spec.packet_count = 10;
  const auto report = distill(net::bridge_traffic(spec));
  for (const auto& rec : report.records) EXPECT_EQ(rec.cycles, 0u);
}

TEST_F(DistillerTest, CyclesPopulatedWithRealisticSink) {
  hw::RealisticSim testbed;
  auto sink_runner = bridge.make_runner(nf::framework_full(), &testbed);
  Distiller distiller(*sink_runner, &testbed, &bridge.methods);
  net::BridgeSpec spec;
  spec.packet_count = 10;
  auto packets = net::bridge_traffic(spec);
  const auto report = distiller.run(packets);
  for (const auto& rec : report.records) EXPECT_GT(rec.cycles, 0u);
}

TEST_F(DistillerTest, PcapRoundTripFeedsDistiller) {
  // The paper's workflow: traffic sample as a PCAP file -> Distiller.
  net::BridgeSpec spec;
  spec.packet_count = 50;
  const auto original = net::bridge_traffic(spec);
  const std::string path = ::testing::TempDir() + "/distill.pcap";
  net::write_pcap(path, original);
  auto loaded = net::read_pcap(path);
  const auto report = distill(std::move(loaded));
  EXPECT_EQ(report.records.size(), 50u);
}

TEST_F(DistillerTest, DensityTableRendersValues) {
  net::BridgeSpec spec;
  spec.packet_count = 100;
  const auto report = distill(net::bridge_traffic(spec));
  const std::string table = report.density_table(reg.require("e"), reg);
  EXPECT_NE(table.find("Probability Density"), std::string::npos);
}

}  // namespace
}  // namespace bolt::core

// --- sensitivity analysis (paper §4) ----------------------------------------

#include "core/sensitivity.h"

namespace bolt::core {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  SensitivityTest() : bridge(make_bridge(reg, default_bridge_config())) {
    runner = bridge.make_runner();
    ContractGenerator gen(reg);
    generated = gen.generate(bridge.analysis());
  }

  DistillerReport sample(std::size_t packets, std::size_t stations) {
    Distiller distiller(*runner, nullptr, &bridge.methods);
    net::BridgeSpec spec;
    spec.packet_count = packets;
    spec.stations = stations;
    auto traffic = net::bridge_traffic(spec);
    return distiller.run(traffic);
  }

  perf::PcvRegistry reg;
  NfInstance bridge;
  std::unique_ptr<NfRunner> runner;
  GenerationResult generated;
};

TEST_F(SensitivityTest, PredictionsIncreaseMonotonically) {
  const auto report = sample(5000, 800);
  const auto& entry = generated.contract.require(
      "unicast | bridge.expire=expire,bridge.learn=new,bridge.lookup=hit");
  const auto s = sensitivity(entry, perf::Metric::kInstructions,
                             reg.require("t"), report, 8);
  ASSERT_GE(s.points.size(), 9u);
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    EXPECT_GE(s.points[i].predicted, s.points[i - 1].predicted);
  }
  EXPECT_GT(s.growth(), 0.0);
}

TEST_F(SensitivityTest, TrafficFractionsAreAProbability) {
  const auto report = sample(4000, 800);
  const auto& entry = generated.contract.entries().front();
  const auto s = sensitivity(entry, perf::Metric::kInstructions,
                             reg.require("t"), report);
  double total_at = 0.0;
  for (const auto& p : s.points) {
    EXPECT_GE(p.traffic_fraction_at, 0.0);
    EXPECT_LE(p.traffic_fraction_at, 1.0);
    total_at += p.traffic_fraction_at;
  }
  EXPECT_NEAR(total_at, 1.0, 1e-9);
  EXPECT_NEAR(s.points.back().traffic_fraction_above, 0.0, 1e-9);
}

TEST_F(SensitivityTest, CcdfColumnDecreases) {
  const auto report = sample(4000, 800);
  const auto& entry = generated.contract.entries().front();
  const auto s = sensitivity(entry, perf::Metric::kCycles, reg.require("t"),
                             report);
  for (std::size_t i = 1; i < s.points.size(); ++i) {
    EXPECT_LE(s.points[i].traffic_fraction_above,
              s.points[i - 1].traffic_fraction_above);
  }
}

TEST_F(SensitivityTest, TableRenders) {
  const auto report = sample(1000, 300);
  const auto& entry = generated.contract.entries().front();
  const auto s = sensitivity(entry, perf::Metric::kInstructions,
                             reg.require("t"), report, 4);
  const std::string table = s.table(reg);
  EXPECT_NE(table.find("CCDF"), std::string::npos);
  EXPECT_NE(table.find("t"), std::string::npos);
}

}  // namespace
}  // namespace bolt::core
