// Property tests for hash-consed expression interning.
//
// The interner's contract: structural equality <=> pointer equality, the
// smart-constructor folds behave exactly as the un-interned seed did, the
// precomputed hash is structural (identical across construction orders),
// and the DAG walks that exploit sharing (collect_symbols /
// collect_constants / eval_flat) agree with the naive definitions.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "support/random.h"
#include "symbex/expr.h"

namespace bolt::symbex {
namespace {

/// Deterministic random expression DAG over `syms`. Identical rng state
/// builds an identical structure — the interner must return identical
/// pointers for the two builds.
ExprPtr random_expr(support::Rng& rng, const std::vector<SymId>& syms,
                    int depth) {
  if (depth == 0 || rng.chance(0.3)) {
    if (rng.chance(0.6)) return Expr::symbol(syms[rng.below(syms.size())]);
    return Expr::constant(rng.below(1 << 20));
  }
  static const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                               ExprOp::kAnd, ExprOp::kOr,  ExprOp::kXor,
                               ExprOp::kShl, ExprOp::kShr, ExprOp::kEq,
                               ExprOp::kNe,  ExprOp::kLtU, ExprOp::kGeU};
  const ExprOp op = ops[rng.below(12)];
  ExprPtr a = random_expr(rng, syms, depth - 1);
  ExprPtr b = random_expr(rng, syms, depth - 1);
  return Expr::binary(op, a, b);
}

/// Structural comparison that does NOT rely on interning.
bool structurally_equal(ExprPtr a, ExprPtr b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kConst: return a->const_value() == b->const_value();
    case ExprKind::kSym: return a->sym_id() == b->sym_id();
    case ExprKind::kUnary:
      return a->op() == b->op() && structurally_equal(a->lhs(), b->lhs());
    case ExprKind::kBinary:
      return a->op() == b->op() && structurally_equal(a->lhs(), b->lhs()) &&
             structurally_equal(a->rhs(), b->rhs());
  }
  return false;
}

class InternPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InternPropertyTest, StructuralEqualityIsPointerEquality) {
  const std::vector<SymId> syms = {0, 1, 2, 3};
  // Build the same random DAG twice from identical rng state.
  support::Rng rng_a(GetParam());
  support::Rng rng_b(GetParam());
  for (int i = 0; i < 50; ++i) {
    const ExprPtr a = random_expr(rng_a, syms, 3);
    const ExprPtr b = random_expr(rng_b, syms, 3);
    ASSERT_TRUE(structurally_equal(a, b));
    EXPECT_EQ(a, b) << "same structure must intern to the same node";
    EXPECT_EQ(a->hash(), b->hash());
  }
  // And in the other direction: pointer equality implies structural
  // equality trivially, but distinct structures must not alias.
  support::Rng rng_c(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 50; ++i) {
    const ExprPtr a = random_expr(rng_c, syms, 3);
    const ExprPtr b = random_expr(rng_c, syms, 3);
    if (a == b) EXPECT_TRUE(structurally_equal(a, b));
    if (!structurally_equal(a, b)) EXPECT_NE(a, b);
  }
}

TEST_P(InternPropertyTest, EvalFlatMatchesEvalMap) {
  const std::vector<SymId> syms = {0, 1, 2};
  support::Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 30; ++i) {
    const ExprPtr e = random_expr(rng, syms, 3);
    Assignment map_model;
    std::uint64_t flat[3];
    for (SymId s : syms) {
      const std::uint64_t v = rng.next();
      map_model[s] = v;
      flat[s] = v;
    }
    EXPECT_EQ(e->eval(map_model), e->eval_flat(flat));
  }
}

TEST_P(InternPropertyTest, HashIsStructuralNotPositional) {
  const std::vector<SymId> syms = {0, 1};
  support::Rng rng(GetParam() + 17);
  const ExprPtr e = random_expr(rng, syms, 3);
  // Interleave unrelated constructions, then rebuild: same node, same hash.
  for (int i = 0; i < 20; ++i) (void)Expr::constant(rng.next());
  support::Rng rng2(GetParam() + 17);
  const ExprPtr e2 = random_expr(rng2, syms, 3);
  EXPECT_EQ(e, e2);
  EXPECT_EQ(e->hash(), e2->hash());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 16));

// ------------------------------------------- seed smart-constructor folds --

TEST(InternFolds, ConstantFoldingMatchesApplyOp) {
  support::Rng rng(0xf01d);
  static const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                               ExprOp::kAnd, ExprOp::kOr,  ExprOp::kXor,
                               ExprOp::kShl, ExprOp::kShr, ExprOp::kEq,
                               ExprOp::kNe,  ExprOp::kLtU, ExprOp::kLeU,
                               ExprOp::kGtU, ExprOp::kGeU};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next();
    const ExprOp op = ops[rng.below(14)];
    const ExprPtr e =
        Expr::binary(op, Expr::constant(a), Expr::constant(b));
    ASSERT_TRUE(e->is_const());
    EXPECT_EQ(e->const_value(), apply_op(op, a, b));
  }
  const ExprPtr n = Expr::unary(ExprOp::kNot, Expr::constant(5));
  ASSERT_TRUE(n->is_const());
  EXPECT_EQ(n->const_value(), ~5ULL);
}

TEST(InternFolds, AlgebraicIdentitiesUnchangedFromSeed) {
  const ExprPtr x = Expr::symbol(1000);
  const ExprPtr zero = Expr::constant(0);
  const ExprPtr one = Expr::constant(1);
  // Right-constant identities.
  EXPECT_EQ(Expr::binary(ExprOp::kAdd, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kSub, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kOr, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kXor, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kShl, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kShr, x, zero), x);
  EXPECT_EQ(Expr::binary(ExprOp::kMul, x, zero), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kAnd, x, zero), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kMul, x, one), x);
  EXPECT_EQ(Expr::binary(ExprOp::kAnd, x, Expr::constant(~0ULL)), x);
  // Left-constant identities.
  EXPECT_EQ(Expr::binary(ExprOp::kAdd, zero, x), x);
  EXPECT_EQ(Expr::binary(ExprOp::kOr, zero, x), x);
  EXPECT_EQ(Expr::binary(ExprOp::kXor, zero, x), x);
  EXPECT_EQ(Expr::binary(ExprOp::kMul, zero, x), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kAnd, zero, x), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kMul, one, x), x);
  // Same-operand folds (now reach any structurally shared operand).
  const ExprPtr sum = Expr::binary(ExprOp::kAdd, x, one);
  const ExprPtr sum2 = Expr::binary(ExprOp::kAdd, x, one);
  EXPECT_EQ(sum, sum2);
  EXPECT_EQ(Expr::binary(ExprOp::kSub, sum, sum2), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kXor, sum, sum2), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kAnd, sum, sum2), sum);
  EXPECT_EQ(Expr::binary(ExprOp::kOr, sum, sum2), sum);
  EXPECT_EQ(Expr::binary(ExprOp::kEq, sum, sum2), one);
  EXPECT_EQ(Expr::binary(ExprOp::kLeU, sum, sum2), one);
  EXPECT_EQ(Expr::binary(ExprOp::kGeU, sum, sum2), one);
  EXPECT_EQ(Expr::binary(ExprOp::kNe, sum, sum2), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kLtU, sum, sum2), zero);
  EXPECT_EQ(Expr::binary(ExprOp::kGtU, sum, sum2), zero);
}

TEST(InternFolds, LogicalNotNegatesComparisonsStructurally) {
  const ExprPtr x = Expr::symbol(1001);
  const ExprPtr k = Expr::constant(7);
  EXPECT_EQ(logical_not(Expr::binary(ExprOp::kEq, x, k)),
            Expr::binary(ExprOp::kNe, x, k));
  EXPECT_EQ(logical_not(Expr::binary(ExprOp::kLtU, x, k)),
            Expr::binary(ExprOp::kGeU, x, k));
  EXPECT_EQ(logical_not(Expr::binary(ExprOp::kGtU, x, k)),
            Expr::binary(ExprOp::kLeU, x, k));
  // Non-comparisons fall back to (e == 0).
  const ExprPtr sum = Expr::binary(ExprOp::kAdd, x, k);
  EXPECT_EQ(logical_not(sum),
            Expr::binary(ExprOp::kEq, sum, Expr::constant(0)));
}

// ------------------------------------------------------------- DAG walks --

TEST(InternWalks, CollectVisitsSharedSubgraphsOnce) {
  const ExprPtr x = Expr::symbol(1002);
  const ExprPtr shared = Expr::binary(ExprOp::kMul, x, Expr::constant(3));
  // Diamond: (x*3) + (x*3 ^ 5) — x appears below two shared parents.
  const ExprPtr e = Expr::binary(
      ExprOp::kAdd, shared,
      Expr::binary(ExprOp::kXor, shared, Expr::constant(5)));
  std::vector<SymId> syms;
  e->collect_symbols(syms);
  EXPECT_EQ(syms, std::vector<SymId>{1002});  // once, not three times
  std::vector<std::uint64_t> consts;
  e->collect_constants(consts);
  std::sort(consts.begin(), consts.end());
  EXPECT_EQ(consts, (std::vector<std::uint64_t>{3, 5}));
}

TEST(InternWalks, SymMaskCoversAllSymbols) {
  const ExprPtr e = Expr::binary(ExprOp::kAdd, Expr::symbol(3),
                                 Expr::binary(ExprOp::kXor, Expr::symbol(70),
                                              Expr::constant(1)));
  EXPECT_NE(e->sym_mask() & (1ULL << 3), 0u);
  EXPECT_NE(e->sym_mask() & (1ULL << (70 % 64)), 0u);
  EXPECT_FALSE(Expr::constant(9)->has_symbols());
  EXPECT_TRUE(e->has_symbols());
}

// ---------------------------------------------------------- concurrency --

TEST(InternConcurrency, ParallelBuildersConvergeOnIdenticalNodes) {
  // 8 threads interning the same expression family must all observe the
  // same pointers (exercises the sharded table under contention; run
  // under TSan in CI).
  constexpr int kThreads = 8;
  constexpr int kExprs = 400;
  std::vector<std::vector<ExprPtr>> built(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &built] {
      auto& out = built[static_cast<std::size_t>(t)];
      out.reserve(kExprs);
      for (int i = 0; i < kExprs; ++i) {
        const ExprPtr e = Expr::binary(
            ExprOp::kEq,
            Expr::binary(ExprOp::kAnd, Expr::symbol(static_cast<SymId>(i % 7)),
                         Expr::constant(0xff)),
            Expr::constant(static_cast<std::uint64_t>(i)));
        out.push_back(e);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(built[0], built[static_cast<std::size_t>(t)]);
  }
}

// ------------------------------------------------------ symbol snapshots --

TEST(SymbolSnapshot, MatchesLiveTableAndStaysImmutable) {
  SymbolTable table;
  const SymId a = table.fresh("a", 8);
  const SymId b = table.fresh("b", 16);
  const SymbolTable::Snapshot snap = table.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.name(a), "a");
  EXPECT_EQ(snap.width_bits(b), 16);
  EXPECT_EQ(snap.max_value(a), 0xffu);
  // Later mints are not visible in the old snapshot...
  const SymId c = table.fresh("c", 32);
  EXPECT_EQ(snap.size(), 2u);
  // ...but a fresh snapshot sees them, and unchanged tables share the
  // cached snapshot storage (one lock, no copy).
  const SymbolTable::Snapshot snap2 = table.snapshot();
  ASSERT_EQ(snap2.size(), 3u);
  EXPECT_EQ(snap2.name(c), "c");
  EXPECT_EQ(snap2.max_value(c), 0xffffffffu);
  const SymbolTable::Snapshot snap3 = table.snapshot();
  EXPECT_EQ(&snap3.name(c), &snap2.name(c));
}

}  // namespace
}  // namespace bolt::symbex
