// End-to-end tests of the BOLT pipeline: symbolic execution -> solving ->
// replay -> contract assembly, and the paper's essential property — for any
// real execution, measured cost <= contract prediction at the induced PCVs.
#include <gtest/gtest.h>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "nf/firewall.h"
#include "nf/micro.h"

namespace bolt::core {
namespace {

using perf::Metric;

BoltOptions quiet_options() {
  BoltOptions opts;
  opts.framework = nf::framework_full();
  return opts;
}

TEST(Pipeline, SimpleLpmContractHasTable1Shape) {
  perf::PcvRegistry reg;
  const NfInstance router = make_simple_lpm(reg);
  BoltOptions opts = quiet_options();
  opts.framework = nf::framework_none();  // the running example ignores DPDK
  ContractGenerator gen(reg, opts);
  const GenerationResult result = gen.generate(router.analysis());

  EXPECT_EQ(result.total_paths, 2u);
  EXPECT_EQ(result.unsolved_paths, 0u);

  // Valid packets: linear in l; invalid: constant.
  const auto* valid = result.contract.find("valid | lpm.get=lookup");
  ASSERT_NE(valid, nullptr);
  const perf::PcvId l = reg.require("l");
  const auto& instr = valid->perf.get(Metric::kInstructions);
  EXPECT_EQ(instr.coefficient(perf::Monomial::pcv(l)), 4);
  EXPECT_GT(instr.constant_term(), 0);

  const auto* invalid = result.contract.find("invalid");
  ASSERT_NE(invalid, nullptr);
  EXPECT_TRUE(invalid->perf.get(Metric::kInstructions).is_constant());
  // Invalid is cheaper than valid at any l.
  perf::PcvBinding bind;
  bind.set(l, 0);
  EXPECT_LT(invalid->perf.get(Metric::kInstructions).eval(bind),
            valid->perf.get(Metric::kInstructions).eval(bind));
}

TEST(Pipeline, BridgeContractCoversAllClasses) {
  perf::PcvRegistry reg;
  const auto cfg = default_bridge_config();
  const NfInstance bridge = make_bridge(reg, cfg);
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(bridge.analysis());

  // 4 learn cases x (broadcast + unicast hit + unicast miss) = 12 paths.
  EXPECT_EQ(result.total_paths, 12u);
  EXPECT_EQ(result.unsolved_paths, 0u);
  EXPECT_EQ(result.contract.entries().size(), 12u);

  // The Table 4 rows exist and have the cross terms.
  const auto* rehash = result.contract.find(
      "broadcast | bridge.expire=expire,bridge.learn=rehash");
  ASSERT_NE(rehash, nullptr);
  const perf::PcvId t = reg.require("t");
  const perf::PcvId o = reg.require("o");
  const auto to = perf::Monomial::pcv(t) * perf::Monomial::pcv(o);
  EXPECT_GT(rehash->perf.get(Metric::kInstructions).coefficient(to), 0);

  const auto* known = result.contract.find(
      "broadcast | bridge.expire=expire,bridge.learn=known");
  ASSERT_NE(known, nullptr);
  const perf::PcvId e = reg.require("e");
  const perf::PcvId c = reg.require("c");
  const auto ec = perf::Monomial::pcv(e) * perf::Monomial::pcv(c);
  EXPECT_GT(known->perf.get(Metric::kInstructions).coefficient(ec), 0);
}

// The central soundness/accuracy experiment in miniature: run traffic, then
// check measured IC/MA against the per-packet contract prediction.
class PredictionAccuracyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PredictionAccuracyTest, BridgePredictionsAreSoundAndTight) {
  perf::PcvRegistry reg;
  const auto cfg = default_bridge_config();
  const NfInstance bridge = make_bridge(reg, cfg);
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(bridge.analysis());

  auto runner = bridge.make_runner();
  Distiller distiller(*runner, nullptr, &bridge.methods);
  net::BridgeSpec spec;
  spec.seed = GetParam();
  spec.packet_count = 3000;
  spec.stations = 300;
  spec.broadcast_fraction = 0.1;
  auto packets = net::bridge_traffic(spec);
  const DistillerReport report = distiller.run(packets);

  std::uint64_t checked = 0;
  for (const PacketRecord& rec : report.records) {
    const auto* entry = result.contract.find(rec.class_key);
    ASSERT_NE(entry, nullptr) << "no contract entry for " << rec.class_key;
    const std::int64_t pred_i =
        entry->perf.get(Metric::kInstructions).eval(rec.pcvs);
    const std::int64_t pred_m =
        entry->perf.get(Metric::kMemoryAccesses).eval(rec.pcvs);
    ASSERT_GE(pred_i, static_cast<std::int64_t>(rec.instructions))
        << rec.class_key;
    ASSERT_GE(pred_m, static_cast<std::int64_t>(rec.mem_accesses))
        << rec.class_key;
    // Paper: max over-estimation ~7%. Give some slack on tiny packets.
    EXPECT_LE(static_cast<double>(pred_i),
              1.10 * static_cast<double>(rec.instructions) + 30);
    EXPECT_LE(static_cast<double>(pred_m),
              1.12 * static_cast<double>(rec.mem_accesses) + 12);
    ++checked;
  }
  EXPECT_EQ(checked, spec.packet_count);
}

TEST_P(PredictionAccuracyTest, NatPredictionsAreSoundAndTight) {
  perf::PcvRegistry reg;
  const auto cfg = default_nat_config();
  const NfInstance nat = make_nat(reg, cfg);
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(nat.analysis());
  EXPECT_EQ(result.unsolved_paths, 0u);

  auto runner = nat.make_runner();
  Distiller distiller(*runner, nullptr, &nat.methods);
  net::ChurnSpec spec;
  spec.seed = GetParam();
  spec.packet_count = 3000;
  spec.active_flows = 400;
  spec.churn = 0.2;
  auto packets = net::churn_traffic(spec);
  const DistillerReport report = distiller.run(packets);

  for (const PacketRecord& rec : report.records) {
    const auto* entry = result.contract.find(rec.class_key);
    ASSERT_NE(entry, nullptr) << "no contract entry for " << rec.class_key;
    const std::int64_t pred_i =
        entry->perf.get(Metric::kInstructions).eval(rec.pcvs);
    const std::int64_t pred_m =
        entry->perf.get(Metric::kMemoryAccesses).eval(rec.pcvs);
    ASSERT_GE(pred_i, static_cast<std::int64_t>(rec.instructions))
        << rec.class_key;
    ASSERT_GE(pred_m, static_cast<std::int64_t>(rec.mem_accesses))
        << rec.class_key;
    EXPECT_LE(static_cast<double>(pred_i),
              1.10 * static_cast<double>(rec.instructions) + 40);
    EXPECT_LE(static_cast<double>(pred_m),
              1.15 * static_cast<double>(rec.mem_accesses) + 14);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredictionAccuracyTest,
                         ::testing::Values(11, 22, 33));

TEST(Pipeline, StaticRouterLoopLinearizes) {
  perf::PcvRegistry reg;
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;
  NfAnalysis analysis;
  analysis.name = "static_router";
  analysis.programs = {&router};
  analysis.methods = &no_methods;
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(analysis);

  EXPECT_EQ(result.unsolved_paths, 0u);
  EXPECT_GT(result.total_paths, 20u);  // the unrolled option families

  const auto* options = result.contract.find("ip_options");
  ASSERT_NE(options, nullptr);
  EXPECT_GT(options->paths_coalesced, 1u);
  ASSERT_TRUE(reg.contains("n"));
  const perf::PcvId n = reg.require("n");
  const auto& instr = options->perf.get(Metric::kInstructions);
  EXPECT_GT(instr.coefficient(perf::Monomial::pcv(n)), 0);

  const auto* no_options = result.contract.find("no_options");
  ASSERT_NE(no_options, nullptr);
  EXPECT_TRUE(no_options->perf.get(Metric::kInstructions).is_constant());
}

TEST(Pipeline, ChainPrunesMaskedPaths) {
  perf::PcvRegistry reg;
  const ir::Program fw = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;

  NfAnalysis chain;
  chain.name = "fw+router";
  chain.programs = {&fw, &router};
  chain.methods = &no_methods;
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(chain);
  EXPECT_EQ(result.unsolved_paths, 0u);

  // The firewall drops options packets, so no contract entry may combine a
  // firewall pass with router option processing.
  for (const auto& entry : result.contract.entries()) {
    const bool fw_pass =
        entry.input_class.find("firewall:no_options") != std::string::npos;
    const bool router_options =
        entry.input_class.find("static_router:ip_options") != std::string::npos;
    EXPECT_FALSE(fw_pass && router_options) << entry.input_class;
  }
}

TEST(Pipeline, AblationNoCoalesceKeepsPaths) {
  perf::PcvRegistry reg;
  const NfInstance bridge = make_bridge(reg, default_bridge_config());
  BoltOptions opts = quiet_options();
  opts.coalesce = false;
  ContractGenerator gen(reg, opts);
  const GenerationResult result = gen.generate(bridge.analysis());
  EXPECT_EQ(result.contract.entries().size(), result.total_paths);
}

TEST(Pipeline, MicroProgramsHaveOnePath) {
  perf::PcvRegistry reg;
  const auto scratch = nf::MicroTraversal::contiguous_list(64);
  const ir::Program p = nf::MicroTraversal::chase_program(64, scratch.size());
  dslib::MethodTable no_methods;
  NfAnalysis analysis;
  analysis.name = "p2";
  analysis.programs = {&p};
  analysis.methods = &no_methods;
  BoltOptions opts = quiet_options();
  opts.executor.max_loop_trips = 100'000;
  opts.executor.scratch_init = scratch;
  opts.framework = nf::framework_none();
  ContractGenerator gen(reg, opts);
  const GenerationResult result = gen.generate(analysis);
  ASSERT_EQ(result.total_paths, 1u);
  EXPECT_EQ(result.unsolved_paths, 0u);
  // Cycles prediction exists and is a constant.
  const auto& entry = result.contract.entries().front();
  EXPECT_TRUE(entry.perf.get(Metric::kCycles).is_constant());
  EXPECT_GT(entry.perf.get(Metric::kCycles).constant_term(), 0);
}

TEST(Pipeline, SymbexAndReplayAgreeOnStatelessCounts) {
  // Cross-validation of the two execution engines: the instruction and
  // memory-access counts the symbolic executor attributes to a path must
  // equal what the concrete interpreter measures when replaying the
  // solved input for that path.
  perf::PcvRegistry reg;
  const NfInstance nat = make_nat(reg, default_nat_config());
  std::map<std::int64_t, symbex::SymbolicModel> models;
  for (const auto& [id, spec] : nat.methods) models.emplace(id, spec.model);
  symbex::Executor ex({&nat.program}, std::move(models));
  auto paths = ex.run();
  ex.solve_inputs(paths);
  ASSERT_FALSE(paths.empty());
  for (const auto& path : paths) {
    ASSERT_TRUE(path.solved);
    net::Packet packet = packet_from_path(path);
    // Replay with a stub env returning the modelled values in order.
    class Stub final : public ir::StatefulEnv {
     public:
      explicit Stub(const symbex::PathResult& p) : path_(p) {}
      ir::CallOutcome call(std::int64_t method, std::uint64_t, std::uint64_t,
                           const net::Packet&, ir::CostMeter&) override {
        const auto& c = path_.calls.at(next_++);
        EXPECT_EQ(c.method, method);
        ir::CallOutcome out;
        out.v0 = c.ret0->eval(path_.model);
        out.v1 = c.ret1->eval(path_.model);
        out.case_label = c.case_label.c_str();
        return out;
      }
      const symbex::PathResult& path_;
      std::size_t next_ = 0;
    } stub(path);
    ir::Interpreter interp(nat.program, &stub);
    const ir::RunResult run = interp.run(packet);
    EXPECT_EQ(run.stateless_instructions, path.symbex_instructions);
    EXPECT_EQ(run.stateless_accesses, path.symbex_accesses);
    EXPECT_EQ(run.class_tag_names(), path.class_tags);
  }
}

TEST(Pipeline, ContractEntriesCoverLinearizedLoopBindings) {
  // The static router's folded "25*n + 224"-style entry must dominate the
  // per-n measured costs for every option count.
  perf::PcvRegistry reg;
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;
  NfAnalysis analysis{"static_router", {&router}, &no_methods};
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(analysis);
  const auto* options = result.contract.find("ip_options");
  ASSERT_NE(options, nullptr);
  const perf::PcvId n = reg.require("n");

  ir::InterpreterOptions iopts;
  nf::apply_framework(iopts, nf::framework_full());
  ir::Interpreter interp(router, nullptr, iopts);
  for (int words = 1; words <= 10; ++words) {
    net::PacketBuilder b;
    b.ipv4(net::Ipv4Address::from_octets(1, 2, 3, 4),
           net::Ipv4Address::from_octets(5, 6, 7, 8));
    for (int w = 0; w < words; ++w) b.ip_timestamp_option(0);  // 4B each
    b.udp(1, 2).timestamp_ns(1'000'000'000);
    net::Packet pkt = b.build();
    const ir::RunResult run = interp.run(pkt);
    ASSERT_EQ(run.class_label(), "ip_options");
    perf::PcvBinding bind;
    // Loop trips = option words + 1 (the exit check); the PCV binds trips.
    bind.set(n, run.loop_trips.at(0));
    const std::int64_t pred =
        options->perf.get(perf::Metric::kInstructions).eval(bind);
    EXPECT_GE(pred, static_cast<std::int64_t>(run.instructions)) << words;
    EXPECT_LE(pred, static_cast<std::int64_t>(run.instructions) + 80) << words;
  }
}

TEST(Pipeline, CyclePredictionsDominateRealisticSim) {
  // Per-packet cycle soundness: contract cycles at induced PCVs >= the
  // realistic simulator's measurement, across a mixed bridge workload.
  perf::PcvRegistry reg;
  const NfInstance bridge = make_bridge(reg, default_bridge_config());
  ContractGenerator gen(reg, quiet_options());
  const GenerationResult result = gen.generate(bridge.analysis());

  hw::RealisticSim testbed;
  auto runner = bridge.make_runner(nf::framework_full(), &testbed);
  Distiller distiller(*runner, &testbed, &bridge.methods);
  net::BridgeSpec spec;
  spec.packet_count = 1500;
  spec.stations = 300;
  spec.broadcast_fraction = 0.2;
  auto packets = net::bridge_traffic(spec);
  const DistillerReport report = distiller.run(packets);
  for (const PacketRecord& rec : report.records) {
    const auto* entry = result.contract.find(rec.class_key);
    ASSERT_NE(entry, nullptr);
    EXPECT_GE(entry->perf.get(Metric::kCycles).eval(rec.pcvs),
              static_cast<std::int64_t>(rec.cycles))
        << rec.class_key;
  }
}

TEST(Pipeline, PacketFromPathSatisfiesConstraints) {
  perf::PcvRegistry reg;
  const NfInstance nat = make_nat(reg, default_nat_config());
  std::map<std::int64_t, symbex::SymbolicModel> models;
  for (const auto& [id, spec] : nat.methods) models.emplace(id, spec.model);
  symbex::Executor ex({&nat.program}, std::move(models));
  auto paths = ex.run();
  ex.solve_inputs(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(path.solved);
    const net::Packet packet = packet_from_path(path);
    EXPECT_GE(packet.size(), 60u);
    for (const auto& c : path.constraints) {
      EXPECT_NE(c->eval(path.model), 0u);
    }
  }
}

}  // namespace
}  // namespace bolt::core
