#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "dslib/bridge_state.h"
#include "dslib/contract_exprs.h"
#include "dslib/flow_table.h"
#include "dslib/lpm.h"
#include "dslib/mac_table.h"
#include "dslib/maglev.h"
#include "dslib/nat_state.h"
#include "dslib/port_allocator.h"
#include "net/workload.h"
#include "support/random.h"

namespace bolt::dslib {
namespace {

using perf::Metric;

FlowTable::Config small_config() {
  FlowTable::Config cfg;
  cfg.capacity = 64;
  cfg.ttl_ns = 1'000'000'000;
  return cfg;
}

TEST(FlowTable, GetMissOnEmpty) {
  FlowTable table(small_config());
  ir::CostMeter m;
  const auto r = table.get(42, m);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.stats.traversals, 0u);
  EXPECT_GT(m.instructions(), 0u);
}

TEST(FlowTable, PutThenGet) {
  FlowTable table(small_config());
  ir::CostMeter m;
  EXPECT_EQ(table.put(1, 100, 0, m).outcome, FlowTable::PutCase::kNew);
  const auto r = table.get(1, m);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, 100u);
  EXPECT_EQ(table.occupancy(), 1u);
}

TEST(FlowTable, PutUpdatesExisting) {
  FlowTable table(small_config());
  ir::CostMeter m;
  table.put(1, 100, 0, m);
  EXPECT_EQ(table.put(1, 200, 10, m).outcome, FlowTable::PutCase::kUpdate);
  EXPECT_EQ(table.get(1, m).value, 200u);
  EXPECT_EQ(table.occupancy(), 1u);
}

TEST(FlowTable, FillsToCapacityThenRejects) {
  FlowTable table(small_config());
  ir::CostMeter m;
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(table.put(k + 1000, k, 0, m).outcome, FlowTable::PutCase::kNew);
  }
  EXPECT_EQ(table.put(9999, 1, 0, m).outcome, FlowTable::PutCase::kFull);
  EXPECT_EQ(table.occupancy(), 64u);
}

TEST(FlowTable, ExpiryEvictsOldEntries) {
  FlowTable table(small_config());
  ir::CostMeter m;
  table.put(1, 10, 1'000'000'000, m);
  table.put(2, 20, 1'500'000'000, m);
  // At t=2.4s entry 1 (stamped 1.0s, ttl 1s) is stale, entry 2 is not.
  const auto r = table.expire(2'400'000'000, m);
  EXPECT_EQ(r.expired, 1u);
  EXPECT_FALSE(table.get(1, m).found);
  EXPECT_TRUE(table.get(2, m).found);
}

TEST(FlowTable, RefreshPreventsExpiry) {
  FlowTable table(small_config());
  ir::CostMeter m;
  table.put(1, 10, 1'000'000'000, m);
  table.put(1, 10, 1'900'000'000, m);  // refresh
  EXPECT_EQ(table.expire(2'400'000'000, m).expired, 0u);
}

TEST(FlowTable, StampGranularityBatchesExpiry) {
  // The paper's VigNAT bug: second-granularity stamps expire in bursts.
  FlowTable::Config cfg = small_config();
  cfg.stamp_granularity_ns = 1'000'000'000;  // one second
  FlowTable table(cfg);
  ir::CostMeter m;
  // Insert entries spread across one second; all get the same stamp.
  for (std::uint64_t k = 0; k < 10; ++k) {
    table.put(k + 1, k, 1'000'000'000 + k * 90'000'000, m);
  }
  const auto r = table.expire(2'000'000'000 + 1, m);
  EXPECT_EQ(r.expired, 10u);  // mass expiry, not gradual
}

TEST(FlowTable, EraseByKey) {
  FlowTable table(small_config());
  ir::CostMeter m;
  table.put(1, 10, 0, m);
  table.put(2, 20, 0, m);
  EXPECT_TRUE(table.erase(1, m).erased);
  EXPECT_FALSE(table.erase(1, m).erased);
  EXPECT_FALSE(table.get(1, m).found);
  EXPECT_TRUE(table.get(2, m).found);
  EXPECT_EQ(table.occupancy(), 1u);
}

TEST(FlowTable, SynthesizedStateCollides) {
  FlowTable table(small_config());
  const std::uint64_t probe = 0xabcdef;
  table.synthesize_colliding_state(32, probe, 0);
  EXPECT_EQ(table.occupancy(), 32u);
  ir::CostMeter m;
  const auto r = table.get(probe, m);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.stats.traversals, 32u);   // walks the whole chain
  EXPECT_EQ(r.stats.collisions, 32u);   // every node shares the tag
}

TEST(FlowTable, MassExpiryIsQuadratic) {
  FlowTable::Config cfg = small_config();
  cfg.capacity = 128;
  FlowTable table(cfg);
  table.synthesize_colliding_state(128, 7, 0);
  ir::CostMeter m;
  const auto r = table.expire(10'000'000'000, m);
  EXPECT_EQ(r.expired, 128u);
  // Oldest entries sit deepest in the chain: total walk ~ n^2 / 2.
  EXPECT_GE(r.total_walk, 128u * 128u / 2);
  EXPECT_EQ(table.occupancy(), 0u);
}

TEST(FlowTable, RekeyKeepsEntriesReachable) {
  FlowTable table(small_config());
  ir::CostMeter m;
  for (std::uint64_t k = 0; k < 20; ++k) table.put(k, k * 2, 0, m);
  table.rekey(0x1234);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const auto r = table.get(k, m);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.value, k * 2);
  }
}

// --- contract soundness: the paper's essential property ---------------------
// For any real execution, the measured cost must never exceed the contract's
// prediction at the observed PCV binding, and should be close to it.

class FlowTableContractTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableContractTest, GetPutExpireAreSoundAndTight) {
  perf::PcvRegistry reg;
  const FlowPcvs p = FlowPcvs::standard(reg);
  FlowTable::Config cfg;
  cfg.capacity = 256;
  FlowTable table(cfg);
  support::Rng rng(GetParam());

  std::uint64_t now = 1'000'000'000;
  for (int op = 0; op < 3000; ++op) {
    now += rng.below(3'000'000);
    const std::uint64_t key = rng.below(300);
    ir::CostMeter m;
    perf::PcvBinding bind;
    CostShape expected;
    if (rng.chance(0.4)) {
      const auto r = table.get(key, m);
      bind.set(p.c, r.stats.collisions);
      bind.set(p.t, r.stats.traversals);
      expected = r.found ? ft_get_hit(p) : ft_get_miss(p);
    } else if (rng.chance(0.7)) {
      const auto r = table.put(key, op, now, m);
      bind.set(p.c, r.stats.collisions);
      bind.set(p.t, r.stats.traversals);
      switch (r.outcome) {
        case FlowTable::PutCase::kNew: expected = ft_put_new(p); break;
        case FlowTable::PutCase::kUpdate: expected = ft_put_update(p); break;
        case FlowTable::PutCase::kFull: expected = ft_put_full(p); break;
      }
    } else {
      const auto r = table.expire(now, m);
      bind.set(p.e, r.expired);
      bind.set(p.t, r.amortised_walk);
      bind.set(p.c, r.amortised_collisions);
      expected = ft_expire(p);
    }
    const std::int64_t pred_i =
        expected.exprs.get(Metric::kInstructions).eval(bind);
    const std::int64_t pred_m =
        expected.exprs.get(Metric::kMemoryAccesses).eval(bind);
    // The unique-line expression must never exceed the MA expression.
    ASSERT_LE(expected.unique_lines.eval(bind), pred_m);
    // Soundness: prediction >= measured.
    ASSERT_GE(pred_i, static_cast<std::int64_t>(m.instructions()));
    ASSERT_GE(pred_m, static_cast<std::int64_t>(m.accesses()));
    // Tightness: within 15% + small slack (the deliberate coalescing gap).
    EXPECT_LE(static_cast<double>(pred_i),
              1.15 * static_cast<double>(m.instructions()) + 24.0);
    EXPECT_LE(static_cast<double>(pred_m),
              1.15 * static_cast<double>(m.accesses()) + 8.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableContractTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MacTable, LearnsAndLooksUp) {
  MacTable::Config cfg;
  cfg.capacity = 128;
  MacTable table(cfg);
  ir::CostMeter m;
  EXPECT_EQ(table.learn(0xaaa, 3, 0, m).outcome, MacTable::LearnCase::kNew);
  EXPECT_EQ(table.learn(0xaaa, 3, 1, m).outcome, MacTable::LearnCase::kKnown);
  const auto r = table.lookup(0xaaa, m);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.port, 3);
  EXPECT_FALSE(table.lookup(0xbbb, m).found);
}

TEST(MacTable, CollisionAttackTriggersRehash) {
  MacTable::Config cfg;
  cfg.capacity = 1024;
  cfg.rehash_threshold = 6;
  cfg.initial_hash_key = 0;  // the attacker knows the key
  MacTable table(cfg);
  const auto macs = net::colliding_keys(16, 0, 1024, 0, 0x020000000000ULL);
  ir::CostMeter m;
  bool rehashed = false;
  for (const std::uint64_t mac : macs) {
    const auto r = table.learn(mac, 1, 0, m);
    if (r.outcome == MacTable::LearnCase::kRehash) rehashed = true;
  }
  EXPECT_TRUE(rehashed);
  EXPECT_GE(table.rehash_count(), 1u);
  EXPECT_NE(table.hash_key(), 0u);  // key was renewed
  // All MACs still reachable after the rehash.
  for (const std::uint64_t mac : macs) {
    EXPECT_TRUE(table.lookup(mac, m).found);
  }
}

TEST(MacTable, RehashDefeatsTheAttack) {
  MacTable::Config cfg;
  cfg.capacity = 1024;
  cfg.rehash_threshold = 6;
  MacTable table(cfg);
  const auto macs = net::colliding_keys(64, 0, 1024, 0, 0x020000000000ULL);
  ir::CostMeter m;
  for (const std::uint64_t mac : macs) table.learn(mac, 1, 0, m);
  // Under the new secret key the attacker's MACs no longer pile up: the
  // worst chain is far below the station count.
  std::uint64_t worst = 0;
  for (const std::uint64_t mac : macs) {
    worst = std::max(worst, table.lookup(mac, m).stats.traversals);
  }
  EXPECT_LT(worst, 16u);
}

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie trie;
  trie.insert(0x0a000000, 8, 1);   // 10/8 -> 1
  trie.insert(0x0a010000, 16, 2);  // 10.1/16 -> 2
  trie.insert(0x0a010200, 24, 3);  // 10.1.2/24 -> 3
  ir::CostMeter m;
  EXPECT_EQ(trie.lookup(0x0a020304, m).port, 1);
  EXPECT_EQ(trie.lookup(0x0a01ff00, m).port, 2);
  EXPECT_EQ(trie.lookup(0x0a010203, m).port, 3);
  EXPECT_EQ(trie.lookup(0x0b000000, m).port, 0);  // default route
}

TEST(LpmTrie, MatchedLengthIsTheDepthWalked) {
  LpmTrie trie;
  trie.insert(0x80000000, 4, 9);
  ir::CostMeter m;
  EXPECT_EQ(trie.lookup(0x80000000, m).matched_length, 4u);
  EXPECT_EQ(trie.lookup(0x00000000, m).matched_length, 0u);
}

TEST(LpmTrie, CostMatchesTable2) {
  // Table 2: 4*l + 2 instructions, l + 1 memory accesses (upper bound).
  LpmTrie trie;
  trie.insert(0xffffff00, 24, 5);
  ir::CostMeter m;
  const auto r = trie.lookup(0xffffffff, m);
  EXPECT_EQ(r.matched_length, 24u);
  EXPECT_LE(m.instructions(), 4 * 24 + 2u);
  EXPECT_GE(m.instructions(), 3 * 24 + 2u);  // bit-dependent lower bound
  EXPECT_EQ(m.accesses(), 24 + 1u);
}

TEST(LpmDir, TierSplitAt24Bits) {
  LpmDir24_8 lpm;
  lpm.insert(0x0a000000, 8, 1);
  lpm.insert(0xc0a80000, 30, 2);  // >24-bit prefix forces tbl8
  ir::CostMeter m;
  const auto one = lpm.lookup(0x0a121212, m);
  EXPECT_EQ(one.port, 1);
  EXPECT_EQ(one.tier, LpmDir24_8::LookupCase::kOneLookup);
  const auto two = lpm.lookup(0xc0a80001, m);
  EXPECT_EQ(two.port, 2);
  EXPECT_EQ(two.tier, LpmDir24_8::LookupCase::kTwoLookups);
  // Anything sharing the /24 of a long prefix also takes two lookups, and
  // falls back to whatever shorter route covers it (here: none -> default).
  const auto spill = lpm.lookup(0xc0a800ff, m);
  EXPECT_EQ(spill.tier, LpmDir24_8::LookupCase::kTwoLookups);
  EXPECT_EQ(spill.port, 0);
}

TEST(LpmDir, AgreesWithTrieOnRandomRoutes) {
  LpmDir24_8 lpm;
  LpmTrie trie;
  support::Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const int len = static_cast<int>(rng.range(8, 28));
    const std::uint32_t mask = len == 32 ? ~0u : ~((1u << (32 - len)) - 1);
    const std::uint32_t prefix = static_cast<std::uint32_t>(rng.next()) & mask;
    const std::uint16_t port = static_cast<std::uint16_t>(rng.range(1, 100));
    lpm.insert(prefix, len, port);
    trie.insert(prefix, len, port);
  }
  ir::CostMeter m;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t addr = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(lpm.lookup(addr, m).port, trie.lookup(addr, m).port)
        << "addr=" << addr;
  }
}

TEST(Maglev, TableIsFullAndBalanced) {
  MaglevRing::Config cfg;
  cfg.backend_count = 8;
  cfg.table_size = 4099;
  MaglevRing ring(cfg);
  std::map<std::uint32_t, std::size_t> share;
  for (std::size_t i = 0; i < ring.table_size(); ++i) {
    ++share[ring.table_entry(i)];
  }
  ASSERT_EQ(share.size(), 8u);
  for (const auto& [backend, count] : share) {
    // Maglev guarantees near-equal shares.
    EXPECT_NEAR(static_cast<double>(count), 4099.0 / 8, 4099.0 / 8 * 0.2);
  }
}

TEST(Maglev, LookupIsDeterministic) {
  MaglevRing ring({4, 211, 5'000'000'000});
  ir::CostMeter m;
  const auto a = ring.lookup(12345, m);
  const auto b = ring.lookup(12345, m);
  EXPECT_EQ(a.backend, b.backend);
}

TEST(Maglev, SelectAliveSkipsDeadBackends) {
  MaglevRing ring({4, 211, 5'000'000'000});
  ring.all_alive(1'000'000'000);
  ir::CostMeter m;
  const auto home = ring.select_alive(999, 1'000'000'001, m);
  EXPECT_EQ(home.ring_steps, 0u);
  ring.kill_backend(home.backend);
  const auto moved = ring.select_alive(999, 1'000'000'001, m);
  EXPECT_NE(moved.backend, home.backend);
  EXPECT_GE(moved.ring_steps, 1u);
}

TEST(Maglev, HeartbeatRevives) {
  MaglevRing ring({4, 211, 5'000'000'000});
  ir::CostMeter m;
  EXPECT_FALSE(ring.alive(2, 1'000'000'000, m));
  ring.heartbeat(2, 1'000'000'000, m);
  EXPECT_TRUE(ring.alive(2, 1'000'000'001, m));
  EXPECT_FALSE(ring.alive(2, 7'000'000'000, m));  // timed out
}

TEST(Allocators, ExhaustionAndReuse) {
  for (const bool use_b : {false, true}) {
    std::unique_ptr<PortAllocator> alloc;
    if (use_b) alloc = std::make_unique<PortAllocatorB>(1000, 4);
    else alloc = std::make_unique<PortAllocatorA>(1000, 4);
    ir::CostMeter m;
    std::set<std::uint16_t> ports;
    for (int i = 0; i < 4; ++i) {
      const auto r = alloc->alloc(m);
      ASSERT_TRUE(r.ok);
      ports.insert(r.port);
    }
    EXPECT_EQ(ports.size(), 4u);
    EXPECT_FALSE(alloc->alloc(m).ok);
    alloc->free(*ports.begin(), m);
    EXPECT_TRUE(alloc->alloc(m).ok);
  }
}

TEST(Allocators, BProbesGrowWithOccupancy) {
  PortAllocatorB alloc(1000, 256);
  ir::CostMeter m;
  // Fill the whole range; the cursor wraps back to slot 0.
  std::vector<std::uint16_t> held;
  for (int i = 0; i < 256; ++i) held.push_back(alloc.alloc(m).port);
  // Free one slot far past the cursor: the next allocation must scan
  // through the occupied prefix to reach it.
  alloc.free(held[10], m);
  const auto r = alloc.alloc(m);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.port, held[10]);
  EXPECT_EQ(r.probes, 11u);
  // At low occupancy the scan hits immediately.
  PortAllocatorB fresh(1000, 256);
  EXPECT_EQ(fresh.alloc(m).probes, 1u);
}

TEST(Allocators, ACostIsFlat) {
  PortAllocatorA alloc(1000, 256);
  ir::CostMeter m1;
  alloc.alloc(m1);
  // Fill most of the range.
  ir::CostMeter mtmp;
  for (int i = 0; i < 200; ++i) alloc.alloc(mtmp);
  ir::CostMeter m2;
  alloc.alloc(m2);
  EXPECT_EQ(m1.instructions(), m2.instructions());
}

TEST(NatState, PathologicalSynthesisIsConsistent) {
  perf::PcvRegistry reg;
  NatState::Config cfg;
  cfg.flow.capacity = 128;
  NatState nat(cfg, reg);
  nat.synthesize_pathological(/*probe_key=*/777, 128, /*stamp=*/0);
  EXPECT_EQ(nat.internal_table().occupancy(), 128u);
  EXPECT_EQ(nat.external_table().occupancy(), 128u);
  EXPECT_EQ(nat.allocator().in_use(), 128u);
  // A packet far in the future mass-expires everything and releases the
  // ports and reverse mappings.
  DispatchEnv env;
  nat.bind(env);
  net::Packet pkt =
      net::packet_for_tuple(net::tuple_for_index(1), 100'000'000'000ULL);
  ir::CostMeter m;
  const auto out = env.call(NatState::kExpire, 0, 0, pkt, m);
  EXPECT_EQ(out.v0, 128u);
  EXPECT_EQ(nat.internal_table().occupancy(), 0u);
  EXPECT_EQ(nat.external_table().occupancy(), 0u);
  EXPECT_EQ(nat.allocator().in_use(), 0u);
}

TEST(NatState, AddFlowCreatesBothMappings) {
  perf::PcvRegistry reg;
  NatState::Config cfg;
  cfg.flow.capacity = 64;
  NatState nat(cfg, reg);
  DispatchEnv env;
  nat.bind(env);
  net::Packet pkt = net::packet_for_tuple(net::tuple_for_index(5), 1'000'000'000);
  ir::CostMeter m;
  const auto added = env.call(NatState::kAddFlow, 0, 0, pkt, m);
  EXPECT_EQ(added.v0, 1u);
  const std::uint16_t ext_port = static_cast<std::uint16_t>(added.v1);
  // Internal lookup now hits.
  const auto hit = env.call(NatState::kLookupInt, 0, 0, pkt, m);
  EXPECT_EQ(hit.v0, 1u);
  EXPECT_EQ(hit.v1, ext_port);
  // Return traffic (dst port = allocated port) resolves the reverse mapping.
  net::FiveTuple back = net::tuple_for_index(5).reversed();
  back.dst_port = ext_port;
  net::Packet ret = net::packet_for_tuple(back, 1'000'100'000);
  const auto rev = env.call(NatState::kLookupExt, 0, 0, ret, m);
  EXPECT_EQ(rev.v0, 1u);
  const auto tuple = net::tuple_for_index(5);
  EXPECT_EQ(rev.v1 >> 16, tuple.src_ip.value);
  EXPECT_EQ(rev.v1 & 0xffff, tuple.src_port);
}

}  // namespace
}  // namespace bolt::dslib
