// support/spsc_ring.h — the lock-free stage connector of the monitor's
// batched pipeline. Unit tests cover the single-threaded contract
// (capacity rounding, full/empty boundaries, wraparound, close semantics,
// move discipline); the threaded tests are the SPSC claim itself and are
// what the TSan CI job watches.
#include "support/spsc_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace bolt::support {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, StartsEmptyAndPopFailsWhenEmpty) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);  // untouched on failure
}

TEST(SpscRing, PushFailsExactlyAtCapacity) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(v)) << "push " << i;
  }
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_EQ(overflow, 99);  // left untouched so the caller can retry
  // Draining one slot makes room for exactly one more.
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(overflow));
  EXPECT_FALSE(ring.try_push(overflow));
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  // Capacity 4, 1000 elements: the indices wrap the ring 250 times and
  // (with size_t arithmetic) exercise the mask-based slot mapping.
  SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0;
  while (next_pop < 1000) {
    int v = next_push;
    while (next_push < 1000 && ring.try_push(v)) {
      ++next_push;
      v = next_push;
    }
    int out = -1;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopReturnsFalseOnlyAfterClosedAndDrained) {
  SpscRing<int> ring(8);
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));
  v = 2;
  ASSERT_TRUE(ring.try_push(v));
  ring.close();
  int out = 0;
  EXPECT_TRUE(ring.pop(out));  // close() never loses buffered elements
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.pop(out));  // closed and drained: end of stream
  EXPECT_FALSE(ring.pop(out));  // ...and stays that way
}

TEST(SpscRing, CloseOnEmptyRingEndsStreamImmediately) {
  SpscRing<int> ring(2);
  ring.close();
  int out = 0;
  EXPECT_FALSE(ring.pop(out));
}

TEST(SpscRing, MoveOnlyElementsPassThroughIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  auto p = std::make_unique<int>(42);
  ASSERT_TRUE(ring.try_push(p));
  EXPECT_EQ(p, nullptr);  // moved from on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRing, FailedPushDoesNotMoveFromTheValue) {
  SpscRing<std::string> ring(1);
  std::string keep = "first";
  ASSERT_TRUE(ring.try_push(keep));
  std::string second = "second";
  ASSERT_FALSE(ring.try_push(second));
  EXPECT_EQ(second, "second");
}

// --- producer-side stats hook (the telemetry layer's ring counters) ---

TEST(SpscRingStatsHook, CountsPushesStallsAndHighWater) {
  SpscRing<int> ring(4);
  SpscRingStats stats;
  ring.set_stats(&stats);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(v));
  }
  EXPECT_EQ(stats.pushes, 4u);
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_EQ(stats.occupancy_high_water, 4u);

  int overflow = 99;
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_EQ(stats.stalls, 2u);
  EXPECT_EQ(stats.pushes, 4u);  // failed pushes are not pushes

  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(ring.try_push(overflow));
  EXPECT_EQ(stats.pushes, 5u);
  // High-water stays at the historical maximum, not the current occupancy.
  EXPECT_EQ(stats.occupancy_high_water, 4u);
}

TEST(SpscRingStatsHook, DetachingStopsCounting) {
  SpscRing<int> ring(2);
  SpscRingStats stats;
  ring.set_stats(&stats);
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));
  ring.set_stats(nullptr);
  v = 2;
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(stats.pushes, 1u);
}

TEST(SpscRingStatsHook, ThreadedCountsMatchAndBoundHolds) {
  // Attach before the producer starts, read after it joins — the
  // documented discipline. Counts must be exact; the occupancy estimate
  // must never exceed the capacity bound.
  SpscRing<std::uint64_t> ring(4);
  SpscRingStats stats;
  ring.set_stats(&stats);
  constexpr std::uint64_t kCount = 50'000;
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (ring.pop(v)) ++popped;
  });
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push(i);
    ring.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(popped, kCount);
  EXPECT_EQ(stats.pushes, kCount);
  EXPECT_LE(stats.occupancy_high_water, ring.capacity());
  EXPECT_GE(stats.occupancy_high_water, 1u);
}

// --- threaded tests: the actual single-producer/single-consumer claim ---
// Run under TSan in CI; a missing acquire/release pair or an index race
// shows up here.

TEST(SpscRingThreaded, StreamsEveryElementInOrder) {
  // Small capacity forces constant full/empty boundary crossings — the
  // contended paths, not the fast path.
  SpscRing<std::uint64_t> ring(4);
  constexpr std::uint64_t kCount = 200'000;
  std::uint64_t sum = 0;
  std::uint64_t popped = 0;
  bool in_order = true;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    std::uint64_t expected = 0;
    while (ring.pop(v)) {
      in_order = in_order && v == expected;
      ++expected;
      sum += v;
      ++popped;
    }
  });
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) ring.push(i);
    ring.close();
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(popped, kCount);
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingThreaded, CloseRaceNeverLosesElements) {
  // The close() re-check in pop(): the producer pushes its last element
  // and closes immediately; the consumer must still see every element.
  for (int round = 0; round < 200; ++round) {
    SpscRing<int> ring(2);
    int received = 0;
    std::thread consumer([&] {
      int v = 0;
      while (ring.pop(v)) ++received;
    });
    for (int i = 0; i < 5; ++i) ring.push(i);
    ring.close();
    consumer.join();
    EXPECT_EQ(received, 5) << "round " << round;
  }
}

TEST(SpscRingThreaded, RecyclingPairMirrorsThePipeline) {
  // The monitor's actual topology: a data ring one way, a return ring
  // recycling buffers the other way, each ring strictly SPSC (the two
  // directions have swapped roles, which is still one producer and one
  // consumer per ring).
  SpscRing<std::vector<int>> data(4);
  SpscRing<std::vector<int>> recycle(4);
  constexpr int kBatches = 20'000;
  std::int64_t received_sum = 0;
  std::thread consumer([&] {
    std::vector<int> b;
    while (data.pop(b)) {
      received_sum += std::accumulate(b.begin(), b.end(), std::int64_t{0});
      b.clear();
      recycle.try_push(b);  // full return ring: drop, producer reallocates
    }
  });
  std::int64_t sent_sum = 0;
  std::vector<int> batch;
  for (int i = 0; i < kBatches; ++i) {
    batch.assign({i, i + 1, i + 2});
    sent_sum += std::int64_t{3} * i + 3;
    data.push(std::move(batch));
    batch = {};
    recycle.try_pop(batch);  // reuse a recycled buffer when one came back
  }
  data.close();
  consumer.join();
  EXPECT_EQ(received_sum, sent_sum);
}

}  // namespace
}  // namespace bolt::support
