#include <gtest/gtest.h>

#include "hw/cache.h"
#include "hw/models.h"

namespace bolt::hw {
namespace {

TEST(Cache, HitAfterMiss) {
  Cache cache(1024, 2);
  EXPECT_FALSE(cache.access(100));
  EXPECT_TRUE(cache.access(100));
  EXPECT_TRUE(cache.contains(100));
}

TEST(Cache, LruEviction) {
  Cache cache(2 * kCacheLineBytes, 2);  // one set, two ways
  cache.access(0);
  cache.access(1);
  cache.access(0);       // 0 is now the most recent
  cache.access(2);       // evicts 1
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Cache, SetsAreIndependent) {
  Cache cache(4 * kCacheLineBytes, 1);  // 4 sets, direct mapped
  cache.access(0);
  cache.access(1);
  cache.access(2);
  cache.access(3);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(3));
  cache.access(4);  // maps to set 0, evicts line 0 only
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, InsertDoesNotEvictResident) {
  Cache cache(1024, 2);
  cache.access(5);
  cache.insert(5);
  EXPECT_TRUE(cache.contains(5));
}

TEST(Cache, ClearEmpties) {
  Cache cache(1024, 2);
  cache.access(5);
  cache.clear();
  EXPECT_FALSE(cache.contains(5));
}

TEST(Conservative, ColdAccessIsDram) {
  ConservativeModel model;
  model.begin_packet();
  model.on_access(0x1000, 8, false, false);
  EXPECT_EQ(model.packet_cycles(), default_cycle_costs().cons_dram);
}

TEST(Conservative, ProvenRepeatIsL1) {
  ConservativeModel model;
  model.begin_packet();
  model.on_access(0x1000, 8, false, false);
  model.on_access(0x1004, 4, false, false);  // same line: must-hit
  EXPECT_EQ(model.packet_cycles(),
            default_cycle_costs().cons_dram + default_cycle_costs().cons_l1);
}

TEST(Conservative, PacketBoundaryResetsMustHit) {
  ConservativeModel model;
  model.begin_packet();
  model.on_access(0x1000, 8, false, false);
  model.begin_packet();
  model.on_access(0x1000, 8, false, false);  // may not assume prior packet
  EXPECT_EQ(model.packet_cycles(), default_cycle_costs().cons_dram);
}

TEST(Conservative, StraddlingAccessChargesBothLines) {
  ConservativeModel model;
  model.begin_packet();
  model.on_access(kCacheLineBytes - 2, 4, false, false);
  EXPECT_EQ(model.packet_cycles(), 2 * default_cycle_costs().cons_dram);
}

TEST(Conservative, InstructionCosts) {
  ConservativeModel model;
  model.begin_packet();
  model.on_instruction(ir::Op::kAdd);
  model.on_instruction(ir::Op::kMul);
  model.on_metered_instructions(10);
  const auto& c = default_cycle_costs();
  EXPECT_EQ(model.packet_cycles(), c.cons_alu + 5 + 10 * c.cons_alu);
}

TEST(Realistic, WarmCachesPersistAcrossPackets) {
  RealisticSim sim;
  sim.begin_packet();
  sim.on_access(0x1000, 8, false, false);
  const std::uint64_t cold = sim.packet_cycles();
  sim.begin_packet();
  sim.on_access(0x1000, 8, false, false);  // warm from the previous packet
  EXPECT_LT(sim.packet_cycles(), cold);
  EXPECT_EQ(sim.packet_cycles(), default_cycle_costs().real_l1);
}

TEST(Realistic, DependentStreamUsesPrefetchCost) {
  RealisticSim sim;
  sim.begin_packet();
  // A long ascending run of dependent line misses (cold footprint).
  for (int i = 0; i < 100; ++i) {
    sim.on_access(0x10000000ULL + 64ULL * std::uint64_t(i), 8, false, true);
  }
  EXPECT_GT(sim.stats().prefetch_hits, 90u);
  EXPECT_EQ(sim.stats().mlp_hits, 0u);
}

TEST(Realistic, IndependentStreamUsesMlpCost) {
  RealisticSim sim;
  sim.begin_packet();
  for (int i = 0; i < 100; ++i) {
    sim.on_access(0x20000000ULL + 64ULL * std::uint64_t(i), 8, false, false);
  }
  EXPECT_GT(sim.stats().mlp_hits, 90u);
}

TEST(Realistic, RandomDependentMissesPayFullDram) {
  RealisticSim sim;
  sim.begin_packet();
  std::uint64_t addr = 0xa00000;
  for (int i = 0; i < 100; ++i) {
    addr = (addr * 2862933555777941757ULL + 3037000493ULL);
    sim.on_access((addr % (1ULL << 30)) & ~63ULL, 8, false, true);
  }
  EXPECT_GT(sim.stats().dram, 60u);
}

TEST(Realistic, DescendingStreamsAlsoPrefetch) {
  RealisticSim sim;
  sim.begin_packet();
  for (int i = 100; i >= 0; --i) {
    sim.on_access(0x30000000ULL + 64ULL * std::uint64_t(i), 8, false, true);
  }
  EXPECT_GT(sim.stats().prefetch_hits, 90u);
}

TEST(Soundness, ConservativeNeverUndershootsRealistic) {
  // Property: on any access pattern, the conservative model's charge is at
  // least the realistic one's (the contract must upper-bound the testbed).
  const CycleCosts& c = default_cycle_costs();
  EXPECT_GE(c.cons_alu * 2, c.real_ipc_num);  // per-instruction (num/den=1.5)
  EXPECT_GE(c.cons_l1, c.real_l1);
  EXPECT_GE(c.cons_dram, c.real_dram);
  EXPECT_GE(c.cons_dram, c.real_stream_dependent);
  EXPECT_GE(c.cons_dram, c.real_stream_independent);
}

}  // namespace
}  // namespace bolt::hw
