// Property tests for the constraint solver: on randomly generated systems
// that are satisfiable *by construction*, the solver must return a model
// that actually satisfies every constraint; systems made inconsistent by
// construction must never come back kSat with a bogus model.
#include <gtest/gtest.h>

#include "support/random.h"
#include "symbex/solver.h"

namespace bolt::symbex {
namespace {

/// Builds a random expression over the given symbols that is evaluable
/// under `truth` (used to derive consistent constraints).
ExprPtr random_expr(support::Rng& rng, const std::vector<SymId>& syms,
                    int depth) {
  if (depth == 0 || rng.chance(0.3)) {
    if (rng.chance(0.7)) {
      return Expr::symbol(syms[rng.below(syms.size())]);
    }
    return Expr::constant(rng.below(1024));
  }
  static const ExprOp ops[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kAnd,
                               ExprOp::kOr,  ExprOp::kXor, ExprOp::kShr};
  const ExprOp op = ops[rng.below(6)];
  ExprPtr a = random_expr(rng, syms, depth - 1);
  ExprPtr b = rng.chance(0.5) ? Expr::constant(rng.below(16))
                              : random_expr(rng, syms, depth - 1);
  return Expr::binary(op, std::move(a), std::move(b));
}

class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertyTest, SatisfiableByConstructionIsSolved) {
  support::Rng rng(GetParam());
  SymbolTable syms;
  std::vector<SymId> ids;
  Assignment truth;
  for (int i = 0; i < 4; ++i) {
    const int width = 8 * static_cast<int>(rng.range(1, 4));
    const SymId id = syms.fresh("x" + std::to_string(i), width);
    ids.push_back(id);
    truth[id] = rng.next() & syms.max_value(id);
  }

  // Constraints consistent with `truth`: compare a random expression
  // against its own value under the truth assignment.
  std::vector<ExprPtr> constraints;
  for (int i = 0; i < 8; ++i) {
    const ExprPtr e = random_expr(rng, ids, 2);
    const std::uint64_t v = e->eval(truth);
    switch (rng.below(4)) {
      case 0:
        constraints.push_back(Expr::binary(ExprOp::kEq, e, Expr::constant(v)));
        break;
      case 1:
        constraints.push_back(
            Expr::binary(ExprOp::kLeU, e, Expr::constant(v)));
        break;
      case 2:
        constraints.push_back(
            Expr::binary(ExprOp::kGeU, e, Expr::constant(v)));
        break;
      default:
        constraints.push_back(
            Expr::binary(ExprOp::kNe, e, Expr::constant(v + 1)));
        break;
    }
  }

  Solver solver(syms);
  const SolveResult result = solver.solve(constraints);
  // The system is satisfiable (by `truth`); the solver must not say unsat.
  ASSERT_NE(result.status, SolveStatus::kUnsat);
  if (result.status == SolveStatus::kSat) {
    for (const ExprPtr& c : constraints) {
      EXPECT_NE(c->eval(result.model), 0u) << c->str();
    }
  }
}

TEST_P(SolverPropertyTest, ModelsNeverViolateConstraints) {
  // Whatever the solver returns as kSat must genuinely satisfy the system —
  // even for mixed, possibly-unsatisfiable random systems.
  support::Rng rng(GetParam() ^ 0x5a5a);
  SymbolTable syms;
  std::vector<SymId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(syms.fresh("y", 16));
  std::vector<ExprPtr> constraints;
  for (int i = 0; i < 6; ++i) {
    const ExprPtr e = random_expr(rng, ids, 2);
    constraints.push_back(Expr::binary(
        rng.chance(0.5) ? ExprOp::kLtU : ExprOp::kGeU, e,
        Expr::constant(rng.below(4096))));
  }
  Solver solver(syms);
  const SolveResult result = solver.solve(constraints);
  if (result.status == SolveStatus::kSat) {
    for (const ExprPtr& c : constraints) {
      EXPECT_NE(c->eval(result.model), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(SolverContradictions, ViewDomainsCatchReDerivedExpressions) {
  // The chained-NF pattern: two structurally identical derived expressions
  // constrained both ways must be proved unsat by propagation alone.
  SymbolTable syms;
  const SymId x = syms.fresh("x", 8);
  const auto masked = [&] {
    return Expr::binary(ExprOp::kAnd, Expr::symbol(x), Expr::constant(0xf));
  };
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, masked(), Expr::constant(5)),
      Expr::binary(ExprOp::kNe, masked(), Expr::constant(5)),
  };
  Solver solver(syms);
  EXPECT_EQ(solver.solve(cs).status, SolveStatus::kUnsat);
}

TEST(SolverContradictions, LoopBoundsAgainstMaskedHeaderField) {
  // The static router's loop-continuation pattern: 14 + 4*ihl can never
  // exceed 74, so "off < end" at off=78 is unsat.
  SymbolTable syms;
  const SymId x = syms.fresh("ver_ihl", 8);
  const ExprPtr ihl =
      Expr::binary(ExprOp::kAnd, Expr::symbol(x), Expr::constant(0xf));
  const ExprPtr end = Expr::binary(
      ExprOp::kAdd, Expr::constant(14),
      Expr::binary(ExprOp::kShl, ihl, Expr::constant(2)));
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kLtU, Expr::constant(78), end)};
  Solver solver(syms);
  EXPECT_EQ(solver.solve(cs).status, SolveStatus::kUnsat);
  // ...while off=58 is still reachable (ihl up to 15).
  std::vector<ExprPtr> ok = {
      Expr::binary(ExprOp::kLtU, Expr::constant(58), end)};
  EXPECT_EQ(solver.solve(ok).status, SolveStatus::kSat);
}

TEST(SolverRepair, BitLevelDisjunctions) {
  // The firewall's bogon check: ((x >> 24) == 127) | ((x >> 28) == 14).
  SymbolTable syms;
  const SymId ip = syms.fresh("src_ip", 32);
  const ExprPtr c = Expr::binary(
      ExprOp::kOr,
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kShr, Expr::symbol(ip), Expr::constant(24)),
                   Expr::constant(127)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kShr, Expr::symbol(ip), Expr::constant(28)),
                   Expr::constant(14)));
  std::vector<ExprPtr> cs = {c};
  Solver solver(syms);
  const SolveResult r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  const std::uint64_t v = r.model.at(ip);
  EXPECT_TRUE((v >> 24) == 127 || (v >> 28) == 14);
}

// ------------------------------------------------- incremental solving --

/// Batch propagation (quick_check over the whole set) and incremental
/// propagation (propagate_into one constraint at a time, as the executor
/// does on every fork) must reach identical unsat verdicts: the executor's
/// deterministic pruned-branch counts depend on it.
TEST_P(SolverPropertyTest, IncrementalPropagationMatchesBatch) {
  support::Rng rng(GetParam() ^ 0x1234abcd);
  SymbolTable syms;
  std::vector<SymId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(syms.fresh("z", 16));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ExprPtr> constraints;
    for (int i = 0; i < 6; ++i) {
      static const ExprOp cmps[] = {ExprOp::kEq, ExprOp::kNe, ExprOp::kLtU,
                                    ExprOp::kLeU, ExprOp::kGtU, ExprOp::kGeU};
      constraints.push_back(Expr::binary(
          cmps[rng.below(6)], random_expr(rng, ids, 2),
          Expr::constant(rng.below(1 << 16))));
    }
    Solver solver(syms);
    const SolveStatus batch = solver.quick_check(constraints);

    DomainStore store;
    std::vector<ExprPtr> so_far;
    SolveStatus incremental = SolveStatus::kUnknown;
    bool decided = false;
    for (const ExprPtr& c : constraints) {
      so_far.push_back(c);
      solver.propagate_into(store, c);
      if (store.infeasible) {
        incremental = SolveStatus::kUnsat;
        decided = true;
        break;
      }
    }
    if (!decided) {
      incremental = solver.quick_check_incremental(store, so_far);
    }
    // kUnsat must agree exactly (it is decided by propagation alone).
    EXPECT_EQ(batch == SolveStatus::kUnsat, incremental == SolveStatus::kUnsat)
        << "trial " << trial;
  }
}

/// A witness carried across incremental checks must always genuinely
/// satisfy the constraint prefix it claims (checked_upto).
TEST_P(SolverPropertyTest, CarriedWitnessSatisfiesCheckedPrefix) {
  support::Rng rng(GetParam() * 31 + 7);
  SymbolTable syms;
  std::vector<SymId> ids;
  Assignment truth;
  for (int i = 0; i < 3; ++i) {
    const SymId id = syms.fresh("w", 16);
    ids.push_back(id);
    truth[id] = rng.next() & syms.max_value(id);
  }
  // Satisfiable-by-construction chain, added one constraint at a time with
  // a check after each addition — the executor's exact access pattern.
  Solver solver(syms);
  DomainStore store;
  std::vector<ExprPtr> so_far;
  for (int i = 0; i < 6; ++i) {
    const ExprPtr e = random_expr(rng, ids, 2);
    const std::uint64_t v = e->eval(truth);
    const ExprPtr c = rng.chance(0.5)
                          ? Expr::binary(ExprOp::kEq, e, Expr::constant(v))
                          : Expr::binary(ExprOp::kLeU, e, Expr::constant(v));
    so_far.push_back(c);
    solver.propagate_into(store, c);
    ASSERT_FALSE(store.infeasible) << "satisfiable by construction";
    const SolveStatus status = solver.quick_check_incremental(store, so_far);
    ASSERT_NE(status, SolveStatus::kUnsat);
    if (status == SolveStatus::kSat && store.checked_upto == so_far.size()) {
      Assignment model;
      for (const auto& [id, val] : store.witness) model[id] = val;
      for (std::size_t k = 0; k < store.checked_upto; ++k) {
        EXPECT_NE(so_far[k]->eval(model), 0u)
            << "witness violates checked constraint " << k;
      }
    }
  }
}

TEST(SolverMemo, RepeatedQuickChecksHitTheCache) {
  SymbolTable syms;
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kGeU, Expr::symbol(x), Expr::constant(100)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(x), Expr::constant(500))};
  const SolveStatus first = solver.quick_check(cs);
  const auto after_first = solver.counters();
  EXPECT_EQ(after_first.memo_misses, 1u);
  // Re-deriving the identical (interned) constraint set must be answered
  // from the memo with the same verdict.
  std::vector<ExprPtr> cs2 = {
      Expr::binary(ExprOp::kGeU, Expr::symbol(x), Expr::constant(100)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(x), Expr::constant(500))};
  EXPECT_EQ(solver.quick_check(cs2), first);
  const auto after_second = solver.counters();
  EXPECT_EQ(after_second.memo_hits, after_first.memo_hits + 1);
  EXPECT_EQ(after_second.memo_misses, after_first.memo_misses);
}

TEST(SolverHints, SolveWarmStartsFromWitness) {
  SymbolTable syms;
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kGeU, Expr::symbol(x), Expr::constant(5000)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(x), Expr::constant(6000))};
  const Witness hint = {{x, 5555}};
  const SolveResult r = solver.solve(cs, &hint);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  // The hint satisfies the set, so the solver must adopt it outright.
  EXPECT_EQ(r.model.at(x), 5555u);
}

TEST(SolverRepair, ConjunctionOfRanges) {
  // The firewall's port block: (p >= 5000) & (p < 6000), plus p != 5500.
  SymbolTable syms;
  const SymId p = syms.fresh("port", 16);
  const ExprPtr band = Expr::binary(
      ExprOp::kAnd,
      Expr::binary(ExprOp::kGeU, Expr::symbol(p), Expr::constant(5000)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(p), Expr::constant(6000)));
  std::vector<ExprPtr> cs = {
      band, Expr::binary(ExprOp::kNe, Expr::symbol(p), Expr::constant(5500))};
  Solver solver(syms);
  const SolveResult r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_GE(r.model.at(p), 5000u);
  EXPECT_LT(r.model.at(p), 6000u);
  EXPECT_NE(r.model.at(p), 5500u);
}

}  // namespace
}  // namespace bolt::symbex
