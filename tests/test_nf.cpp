// Functional tests of the NF programs executed concretely against the real
// stateful library.
#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "nf/framework.h"

namespace bolt::core {
namespace {

TEST(BridgeNf, LearnsAndForwards) {
  perf::PcvRegistry reg;
  const NfInstance bridge = make_bridge(reg, default_bridge_config());
  auto runner = bridge.make_runner();

  const auto mac_a = net::MacAddress::from_u64(0x02000000000a);
  const auto mac_b = net::MacAddress::from_u64(0x02000000000b);
  auto mk = [&](const net::MacAddress& src, const net::MacAddress& dst,
                std::uint16_t port, net::TimestampNs ts) {
    net::PacketBuilder b;
    b.eth(src, dst)
        .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
              net::Ipv4Address::from_octets(10, 0, 0, 2))
        .udp(1, 2)
        .timestamp_ns(ts)
        .in_port(port);
    return b.build();
  };

  // A -> B: B unknown, flood.
  net::Packet p1 = mk(mac_a, mac_b, 3, 1'000'000'000);
  auto r1 = runner->process(p1);
  EXPECT_EQ(r1.verdict, net::NfVerdict::kForward);
  EXPECT_EQ(r1.out_port, nf::kFloodPort);
  EXPECT_EQ(r1.class_label(), "unicast_miss");

  // B -> A: A was learned on port 3.
  net::Packet p2 = mk(mac_b, mac_a, 5, 1'000'100'000);
  auto r2 = runner->process(p2);
  EXPECT_EQ(r2.out_port, 3u);
  EXPECT_EQ(r2.class_label(), "unicast");

  // Broadcast floods.
  net::Packet p3 = mk(mac_a, net::MacAddress::broadcast(), 3, 1'000'200'000);
  auto r3 = runner->process(p3);
  EXPECT_EQ(r3.out_port, nf::kFloodPort);
  EXPECT_EQ(r3.class_label(), "broadcast");
}

TEST(BridgeNf, ExpiryForgetsStations) {
  perf::PcvRegistry reg;
  auto cfg = default_bridge_config();
  cfg.ttl_ns = 1'000'000'000;
  const NfInstance bridge = make_bridge(reg, cfg);
  auto runner = bridge.make_runner();

  net::BridgeSpec spec;
  spec.stations = 4;
  spec.packet_count = 20;
  auto packets = net::bridge_traffic(spec);
  for (auto& p : packets) runner->process(p);
  EXPECT_GT(bridge.state_as<dslib::BridgeState>().mac_table().occupancy(), 0u);

  // A much later packet expires everything learned above.
  net::Packet late = packets[0];
  late.set_timestamp_ns(100'000'000'000ULL);
  const auto r = runner->process(late);
  ASSERT_FALSE(r.calls.empty());
  EXPECT_GT(r.pcvs.get(reg.require("e")), 0u);
}

TEST(NatNf, TranslatesAndReverses) {
  perf::PcvRegistry reg;
  const auto cfg = default_nat_config();
  const NfInstance nat = make_nat(reg, cfg);
  auto runner = nat.make_runner();

  const net::FiveTuple flow = net::tuple_for_index(42);
  net::Packet out = net::packet_for_tuple(flow, 1'000'000'000, 0);
  const auto r1 = runner->process(out);
  EXPECT_EQ(r1.verdict, net::NfVerdict::kForward);
  EXPECT_EQ(r1.class_label(), "internal_new");

  // The packet was rewritten to the NAT's external endpoint.
  const auto rewritten = net::extract_five_tuple(out);
  ASSERT_TRUE(rewritten.has_value());
  EXPECT_EQ(rewritten->src_ip.value, cfg.external_ip);
  const std::uint16_t ext_port = rewritten->src_port;
  EXPECT_GE(ext_port, cfg.first_external_port);

  // Same flow again: established.
  net::Packet again = net::packet_for_tuple(flow, 1'000'100'000, 0);
  const auto r2 = runner->process(again);
  EXPECT_EQ(r2.class_label(), "internal_known");
  const auto rw2 = net::extract_five_tuple(again);
  ASSERT_TRUE(rw2.has_value());
  EXPECT_EQ(rw2->src_port, ext_port);  // stable mapping

  // Return traffic from outside is translated back to the internal host.
  net::FiveTuple back = rewritten->reversed();
  net::Packet ret = net::packet_for_tuple(back, 1'000'200'000, 1);
  const auto r3 = runner->process(ret);
  EXPECT_EQ(r3.class_label(), "external_known");
  const auto rw3 = net::extract_five_tuple(ret);
  ASSERT_TRUE(rw3.has_value());
  EXPECT_EQ(rw3->dst_ip, flow.src_ip);
  EXPECT_EQ(rw3->dst_port, flow.src_port);
}

TEST(NatNf, DropsUnsolicitedExternal) {
  perf::PcvRegistry reg;
  const NfInstance nat = make_nat(reg, default_nat_config());
  auto runner = nat.make_runner();
  net::Packet p = net::packet_for_tuple(net::tuple_for_index(7, false),
                                        1'000'000'000, 1);
  const auto r = runner->process(p);
  EXPECT_EQ(r.verdict, net::NfVerdict::kDrop);
  EXPECT_EQ(r.class_label(), "external_drop");
}

TEST(NatNf, DropsInvalidPackets) {
  perf::PcvRegistry reg;
  const NfInstance nat = make_nat(reg, default_nat_config());
  auto runner = nat.make_runner();
  net::Packet p = net::invalid_packet();
  const auto r = runner->process(p);
  EXPECT_EQ(r.verdict, net::NfVerdict::kDrop);
  EXPECT_EQ(r.class_label(), "invalid");
}

TEST(NatNf, TableFullDropsNewFlows) {
  perf::PcvRegistry reg;
  auto cfg = default_nat_config();
  cfg.flow.capacity = 4;
  const NfInstance nat = make_nat(reg, cfg);
  auto runner = nat.make_runner();
  for (std::uint64_t i = 0; i < 4; ++i) {
    net::Packet p =
        net::packet_for_tuple(net::tuple_for_index(i), 1'000'000'000 + i, 0);
    EXPECT_EQ(runner->process(p).class_label(), "internal_new");
  }
  net::Packet p = net::packet_for_tuple(net::tuple_for_index(99), 1'000'000'999, 0);
  EXPECT_EQ(runner->process(p).class_label(), "internal_table_full");
}

TEST(LbNf, PinsFlowsAndHandlesHealth) {
  perf::PcvRegistry reg;
  const auto cfg = default_lb_config();
  const NfInstance lb = make_lb(reg, cfg);
  auto& state = lb.state_as<dslib::LbState>();
  state.ring().all_alive(1'000'000'000);
  auto runner = lb.make_runner();

  const net::FiveTuple flow = net::tuple_for_index(11, false);
  net::Packet p1 = net::packet_for_tuple(flow, 1'000'000'000, 1);
  const auto r1 = runner->process(p1);
  EXPECT_EQ(r1.class_label(), "new_flow");
  const std::uint64_t backend = r1.out_port;

  net::Packet p2 = net::packet_for_tuple(flow, 1'000'100'000, 1);
  const auto r2 = runner->process(p2);
  EXPECT_EQ(r2.class_label(), "existing_live");
  EXPECT_EQ(r2.out_port, backend);

  // Kill the backend: the flow is reselected elsewhere.
  state.ring().kill_backend(static_cast<std::uint32_t>(backend));
  net::Packet p3 = net::packet_for_tuple(flow, 1'000'200'000, 1);
  const auto r3 = runner->process(p3);
  EXPECT_EQ(r3.class_label(), "existing_unresponsive");
  EXPECT_NE(r3.out_port, backend);
}

TEST(LbNf, HeartbeatsRefreshHealth) {
  perf::PcvRegistry reg;
  const NfInstance lb = make_lb(reg, default_lb_config());
  auto runner = lb.make_runner();
  net::HeartbeatSpec spec;
  spec.packet_count = 32;
  auto hbs = net::heartbeat_traffic(spec);
  for (auto& p : hbs) {
    const auto r = runner->process(p);
    EXPECT_EQ(r.class_label(), "heartbeat");
    EXPECT_EQ(r.verdict, net::NfVerdict::kDrop);
  }
}

TEST(SimpleLpmNf, MatchesAlgorithm1) {
  perf::PcvRegistry reg;
  const NfInstance router = make_simple_lpm(reg);
  auto& trie = router.state_as<dslib::LpmTrieState>().trie();
  trie.insert(0x0a000000, 8, 7);
  auto runner = router.make_runner();

  net::Packet valid =
      net::packet_for_tuple(net::FiveTuple{net::Ipv4Address{0xc0000201},
                                           net::Ipv4Address{0x0a010101}, 1, 2,
                                           net::kIpProtoUdp},
                            1'000'000'000);
  const auto r = runner->process(valid);
  EXPECT_EQ(r.class_label(), "valid");
  EXPECT_EQ(r.out_port, 7u);
  EXPECT_EQ(r.pcvs.get(reg.require("l")), 8u);

  net::Packet bad = net::invalid_packet();
  EXPECT_EQ(runner->process(bad).class_label(), "invalid");
}

TEST(DirLpmNf, ForwardsAndDecrementsTtl) {
  perf::PcvRegistry reg;
  const NfInstance router = make_dir_lpm(reg);
  auto& lpm = router.state_as<dslib::LpmDirState>().table();
  lpm.insert(0x0a000000, 8, 3);
  auto runner = router.make_runner();
  net::Packet p =
      net::packet_for_tuple(net::FiveTuple{net::Ipv4Address{0xc0000201},
                                           net::Ipv4Address{0x0a020202}, 1, 2,
                                           net::kIpProtoUdp},
                            1'000'000'000);
  const std::uint8_t ttl_before = p.bytes()[22];
  const auto r = runner->process(p);
  EXPECT_EQ(r.verdict, net::NfVerdict::kForward);
  EXPECT_EQ(r.out_port, 3u);
  EXPECT_EQ(p.bytes()[22], ttl_before - 1);
}

TEST(FrameworkCosts, FullStackAddsFixedOverhead) {
  perf::PcvRegistry reg;
  const NfInstance router = make_dir_lpm(reg);
  auto bare = router.make_runner(nf::framework_none());
  auto full = router.make_runner(nf::framework_full());
  net::Packet p1 = net::invalid_packet();
  net::Packet p2 = net::invalid_packet();
  const auto r_bare = bare->process(p1);
  const auto r_full = full->process(p2);
  const nf::FrameworkCosts fw;
  EXPECT_EQ(r_full.instructions - r_bare.instructions,
            fw.rx_instructions + fw.drop_instructions);
}

}  // namespace
}  // namespace bolt::core
