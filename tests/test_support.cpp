#include <gtest/gtest.h>

#include <set>

#include "support/random.h"
#include "support/strings.h"

namespace bolt::support {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values of a small range get hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
  EXPECT_EQ(with_commas(591948908371LL), "591,948,908,371");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
}

TEST(Strings, Pad) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyz", 2), "xyz");
}

TEST(Strings, RenderTableAligns) {
  const std::string t =
      render_table({{"h1", "header2"}, {"a", "b"}, {"long-cell", "c"}});
  EXPECT_NE(t.find("h1"), std::string::npos);
  EXPECT_NE(t.find("long-cell"), std::string::npos);
  EXPECT_NE(t.find("---"), std::string::npos);
}

}  // namespace
}  // namespace bolt::support
