#include <gtest/gtest.h>

#include "perf/contract.h"
#include "perf/metric.h"
#include "perf/pcv.h"
#include "perf/perf_expr.h"

namespace bolt::perf {
namespace {

class PerfExprTest : public ::testing::Test {
 protected:
  PcvRegistry reg;
  PcvId e = reg.intern("e", "expired entries");
  PcvId c = reg.intern("c", "hash collisions");
  PcvId t = reg.intern("t", "bucket traversals");
};

TEST_F(PerfExprTest, RegistryInternIsIdempotent) {
  EXPECT_EQ(reg.intern("e"), e);
  EXPECT_EQ(reg.require("c"), c);
  EXPECT_TRUE(reg.contains("t"));
  EXPECT_FALSE(reg.contains("zz"));
  EXPECT_EQ(reg.name(e), "e");
  EXPECT_EQ(reg.description(e), "expired entries");
}

TEST_F(PerfExprTest, ConstantEval) {
  EXPECT_EQ(PerfExpr::constant(42).eval(PcvBinding{}), 42);
  EXPECT_TRUE(PerfExpr::constant(42).is_constant());
  EXPECT_TRUE(PerfExpr().is_zero());
  EXPECT_EQ(PerfExpr().eval(PcvBinding{}), 0);
}

TEST_F(PerfExprTest, LinearEval) {
  // 245*e + 882
  const PerfExpr expr = PerfExpr::pcv(e).scaled(245) + PerfExpr::constant(882);
  PcvBinding bind;
  bind.set(e, 3);
  EXPECT_EQ(expr.eval(bind), 245 * 3 + 882);
  EXPECT_EQ(expr.eval(PcvBinding{}), 882);  // unbound PCVs read as zero
}

TEST_F(PerfExprTest, CrossTermEval) {
  // 82*e*c + 19*e*t  (the bridge contract's cross terms)
  const Monomial ec = Monomial::pcv(e) * Monomial::pcv(c);
  const Monomial et = Monomial::pcv(e) * Monomial::pcv(t);
  const PerfExpr expr = PerfExpr::term(82, ec) + PerfExpr::term(19, et);
  PcvBinding bind;
  bind.set(e, 5);
  bind.set(c, 2);
  bind.set(t, 7);
  EXPECT_EQ(expr.eval(bind), 82 * 5 * 2 + 19 * 5 * 7);
}

TEST_F(PerfExprTest, AdditionMergesTerms) {
  const PerfExpr a = PerfExpr::pcv(e).scaled(10) + PerfExpr::constant(5);
  const PerfExpr b = PerfExpr::pcv(e).scaled(7) + PerfExpr::constant(3);
  const PerfExpr sum = a + b;
  PcvBinding bind;
  bind.set(e, 2);
  EXPECT_EQ(sum.eval(bind), 17 * 2 + 8);
  EXPECT_EQ(sum.term_count(), 2u);
}

TEST_F(PerfExprTest, MultiplicationDistributes) {
  // (e + 2) * (c + 3) = e*c + 3e + 2c + 6
  const PerfExpr a = PerfExpr::pcv(e) + PerfExpr::constant(2);
  const PerfExpr b = PerfExpr::pcv(c) + PerfExpr::constant(3);
  const PerfExpr prod = a * b;
  PcvBinding bind;
  bind.set(e, 4);
  bind.set(c, 5);
  EXPECT_EQ(prod.eval(bind), (4 + 2) * (5 + 3));
  EXPECT_EQ(prod.degree(), 2);
}

TEST_F(PerfExprTest, UpperMaxDominatesBothForNonNegativeBindings) {
  const PerfExpr a = PerfExpr::pcv(e).scaled(10) + PerfExpr::constant(1);
  const PerfExpr b = PerfExpr::pcv(c).scaled(3) + PerfExpr::constant(7);
  const PerfExpr m = PerfExpr::upper_max(a, b);
  for (std::uint64_t ev = 0; ev < 5; ++ev) {
    for (std::uint64_t cv = 0; cv < 5; ++cv) {
      PcvBinding bind;
      bind.set(e, ev);
      bind.set(c, cv);
      EXPECT_GE(m.eval(bind), a.eval(bind));
      EXPECT_GE(m.eval(bind), b.eval(bind));
    }
  }
}

TEST_F(PerfExprTest, ZeroCoefficientsVanish) {
  const PerfExpr a = PerfExpr::pcv(e).scaled(10);
  const PerfExpr b = PerfExpr::pcv(e).scaled(-10);
  EXPECT_TRUE((a + b).is_zero());
}

TEST_F(PerfExprTest, StringRenderingPaperStyle) {
  // 245*e + 82*e*c + 882 — linear terms first, cross terms, constant last.
  const Monomial ec = Monomial::pcv(e) * Monomial::pcv(c);
  const PerfExpr expr = PerfExpr::pcv(e).scaled(245) + PerfExpr::term(82, ec) +
                        PerfExpr::constant(882);
  EXPECT_EQ(expr.str(reg), "245*e + 82*e*c + 882");
  EXPECT_EQ(PerfExpr().str(reg), "0");
  EXPECT_EQ(PerfExpr::pcv(e).str(reg), "e");
}

TEST_F(PerfExprTest, PcvListing) {
  const Monomial ec = Monomial::pcv(e) * Monomial::pcv(c);
  const PerfExpr expr = PerfExpr::term(82, ec) + PerfExpr::constant(882);
  const auto pcvs = expr.pcvs();
  EXPECT_EQ(pcvs.size(), 2u);
}

TEST_F(PerfExprTest, CoefficientQueries) {
  const PerfExpr expr = PerfExpr::pcv(e).scaled(245) + PerfExpr::constant(882);
  EXPECT_EQ(expr.constant_term(), 882);
  EXPECT_EQ(expr.coefficient(Monomial::pcv(e)), 245);
  EXPECT_EQ(expr.coefficient(Monomial::pcv(c)), 0);
}

class ContractTest : public ::testing::Test {
 protected:
  PcvRegistry reg;
  PcvId l = reg.intern("l", "matched prefix length");

  Contract running_example() {
    // The paper's Table 1.
    Contract contract("lpm_router");
    ContractEntry invalid;
    invalid.input_class = "invalid";
    invalid.perf.set(Metric::kInstructions, PerfExpr::constant(2));
    invalid.perf.set(Metric::kMemoryAccesses, PerfExpr::constant(1));
    contract.add(invalid);
    ContractEntry valid;
    valid.input_class = "valid";
    valid.perf.set(Metric::kInstructions,
                   PerfExpr::pcv(l).scaled(4) + PerfExpr::constant(5));
    valid.perf.set(Metric::kMemoryAccesses,
                   PerfExpr::pcv(l) + PerfExpr::constant(3));
    contract.add(valid);
    return contract;
  }
};

TEST_F(ContractTest, Table1Shape) {
  const Contract contract = running_example();
  PcvBinding bind;
  bind.set(l, 24);
  EXPECT_EQ(contract.require("valid").perf.get(Metric::kInstructions).eval(bind),
            4 * 24 + 5);
  EXPECT_EQ(
      contract.require("valid").perf.get(Metric::kMemoryAccesses).eval(bind),
      24 + 3);
  EXPECT_EQ(
      contract.require("invalid").perf.get(Metric::kInstructions).eval(bind), 2);
}

TEST_F(ContractTest, WorstCasePicksTheWorstEntry) {
  const Contract contract = running_example();
  PcvBinding bind;
  bind.set(l, 32);
  EXPECT_EQ(contract.worst_case(Metric::kInstructions, bind), 4 * 32 + 5);
  PcvBinding zero;
  EXPECT_EQ(contract.worst_case(Metric::kInstructions, zero), 5);
}

TEST_F(ContractTest, WorstCaseMatching) {
  const Contract contract = running_example();
  PcvBinding bind;
  bind.set(l, 8);
  EXPECT_EQ(contract.worst_case_matching(Metric::kInstructions, bind, "invalid"),
            2);
}

TEST_F(ContractTest, FindMissingReturnsNull) {
  const Contract contract = running_example();
  EXPECT_EQ(contract.find("nope"), nullptr);
  EXPECT_NE(contract.find("valid"), nullptr);
}

TEST_F(ContractTest, RenderingContainsExpressions) {
  const Contract contract = running_example();
  const std::string table = contract.str(reg, Metric::kInstructions);
  EXPECT_NE(table.find("4*l + 5"), std::string::npos);
  EXPECT_NE(table.find("invalid"), std::string::npos);
}

TEST(MethodContractTest, CaseSelection) {
  PcvRegistry reg;
  const PcvId t = reg.intern("t");
  MethodContract mc("map.get");
  MetricExprs hit;
  hit.set(Metric::kInstructions, PerfExpr::pcv(t).scaled(18));
  mc.add_case("hit", hit);
  MetricExprs miss;
  miss.set(Metric::kInstructions, PerfExpr::constant(9));
  mc.add_case("miss", miss);

  EXPECT_TRUE(mc.has_case("hit"));
  EXPECT_FALSE(mc.has_case("rehash"));
  PcvBinding bind;
  bind.set(t, 2);
  EXPECT_EQ(mc.for_case("hit").get(Metric::kInstructions).eval(bind), 36);
  EXPECT_EQ(mc.case_labels().size(), 2u);
}

TEST(MetricExprsTest, AdditionAndUpperMax) {
  PcvRegistry reg;
  const PcvId x = reg.intern("x");
  MetricExprs a, b;
  a.set(Metric::kInstructions, PerfExpr::constant(10));
  a.set(Metric::kMemoryAccesses, PerfExpr::pcv(x));
  b.set(Metric::kInstructions, PerfExpr::constant(4));
  const MetricExprs sum = a + b;
  EXPECT_EQ(sum.get(Metric::kInstructions).eval(PcvBinding{}), 14);
  const MetricExprs mx = MetricExprs::upper_max(a, b);
  EXPECT_EQ(mx.get(Metric::kInstructions).eval(PcvBinding{}), 10);
}

}  // namespace
}  // namespace bolt::perf

// --- JSON round-trip -----------------------------------------------------

#include "perf/contract_io.h"

namespace bolt::perf {
namespace {

Contract json_fixture(PcvRegistry& reg) {
  const PcvId e = reg.intern("e", "expired entries");
  const PcvId c = reg.intern("c", "hash collisions");
  Contract contract("bridge \"quoted\"");
  ContractEntry entry;
  entry.input_class = "unicast | learn=known";
  entry.paths_coalesced = 3;
  entry.perf.set(Metric::kInstructions,
                 PerfExpr::pcv(e).scaled(245) +
                     PerfExpr::term(82, Monomial::pcv(e) * Monomial::pcv(c)) +
                     PerfExpr::constant(882));
  entry.perf.set(Metric::kMemoryAccesses,
                 PerfExpr::pcv(e) + PerfExpr::constant(3));
  entry.perf.set(Metric::kCycles, PerfExpr::constant(1234));
  contract.add(entry);
  ContractEntry squared;
  squared.input_class = "weird";
  squared.perf.set(Metric::kInstructions,
                   PerfExpr::term(7, Monomial::pcv(e) * Monomial::pcv(e)));
  contract.add(squared);
  return contract;
}

TEST(ContractJson, RoundTripPreservesEverything) {
  PcvRegistry reg;
  const Contract original = json_fixture(reg);
  const std::string json = contract_to_json(original, reg);

  PcvRegistry reg2;
  const Contract parsed = contract_from_json(json, reg2);
  EXPECT_EQ(parsed.nf_name(), original.nf_name());
  ASSERT_EQ(parsed.entries().size(), original.entries().size());
  EXPECT_EQ(reg2.description(reg2.require("e")), "expired entries");

  // Expressions evaluate identically on a grid of bindings.
  for (std::uint64_t ev = 0; ev < 4; ++ev) {
    for (std::uint64_t cv = 0; cv < 4; ++cv) {
      PcvBinding b1, b2;
      b1.set(reg.require("e"), ev);
      b1.set(reg.require("c"), cv);
      b2.set(reg2.require("e"), ev);
      b2.set(reg2.require("c"), cv);
      for (std::size_t i = 0; i < parsed.entries().size(); ++i) {
        for (const Metric m : kAllMetrics) {
          EXPECT_EQ(parsed.entries()[i].perf.get(m).eval(b2),
                    original.entries()[i].perf.get(m).eval(b1));
        }
      }
    }
  }
}

TEST(ContractJson, RoundTripPreservesLabelsAndCounts) {
  PcvRegistry reg;
  const Contract original = json_fixture(reg);
  PcvRegistry reg2;
  const Contract parsed =
      contract_from_json(contract_to_json(original, reg), reg2);
  EXPECT_EQ(parsed.entries()[0].input_class, "unicast | learn=known");
  EXPECT_EQ(parsed.entries()[0].paths_coalesced, 3u);
  EXPECT_EQ(parsed.entries()[1].input_class, "weird");
}

TEST(ContractJson, SquaredPcvSurvives) {
  PcvRegistry reg;
  const Contract original = json_fixture(reg);
  PcvRegistry reg2;
  const Contract parsed =
      contract_from_json(contract_to_json(original, reg), reg2);
  PcvBinding bind;
  bind.set(reg2.require("e"), 5);
  EXPECT_EQ(parsed.entries()[1].perf.get(Metric::kInstructions).eval(bind),
            7 * 25);
}

TEST(ContractJson, EmptyContract) {
  PcvRegistry reg;
  Contract empty("none");
  PcvRegistry reg2;
  const Contract parsed =
      contract_from_json(contract_to_json(empty, reg), reg2);
  EXPECT_TRUE(parsed.entries().empty());
  EXPECT_EQ(parsed.nf_name(), "none");
}

TEST(ContractJson, MalformedInputAborts) {
  PcvRegistry reg;
  EXPECT_DEATH(contract_from_json("{\"version\":2", reg), "version");
  EXPECT_DEATH(contract_from_json("[]", reg), "expected");
}

}  // namespace
}  // namespace bolt::perf
