#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/checksum.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/packet_builder.h"
#include "net/pcap.h"
#include "net/workload.h"

namespace bolt::net {
namespace {

TEST(Addresses, MacRoundTrip) {
  const MacAddress mac = MacAddress::from_u64(0x0123456789abULL);
  EXPECT_EQ(mac.to_u64(), 0x0123456789abULL);
  EXPECT_EQ(mac.str(), "01:23:45:67:89:ab");
  EXPECT_FALSE(mac.is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
}

TEST(Addresses, Ipv4Formatting) {
  EXPECT_EQ(Ipv4Address::from_octets(10, 0, 0, 1).str(), "10.0.0.1");
  EXPECT_EQ(Ipv4Address::from_octets(198, 51, 100, 1).value, 0xc6336401u);
}

TEST(Checksum, Rfc1071Examples) {
  // Known vector: checksum of this header must validate to zero.
  const std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                            0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                            0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                            0x00, 0xc7};
  const std::uint16_t csum = internet_checksum(header);
  EXPECT_EQ(csum, 0xb861);
}

TEST(Checksum, OddLengthTail) {
  const std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  EXPECT_EQ(internet_checksum(data),
            checksum_finish(checksum_accumulate(data)));
}

TEST(PacketBuilder, MinimumFrameAndChecksumValid) {
  Packet pkt = PacketBuilder()
                   .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                         Ipv4Address::from_octets(10, 0, 0, 2))
                   .udp(1234, 80)
                   .timestamp_ns(5)
                   .build();
  EXPECT_GE(pkt.size(), kMinFrameSize);
  EXPECT_EQ(pkt.timestamp_ns(), 5u);

  const auto eth = parse_ethernet(pkt.bytes());
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ether_type, kEtherTypeIpv4);
  const auto ip = parse_ipv4(pkt.bytes(), kEthernetHeaderSize);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, kIpProtoUdp);
  // Checksumming the header (checksum field included) must give 0.
  const auto hdr = pkt.bytes().subspan(kEthernetHeaderSize, ip->header_size());
  EXPECT_EQ(internet_checksum(hdr), 0);
}

TEST(PacketBuilder, IpOptionsPaddedAndParsed) {
  Packet pkt = PacketBuilder()
                   .ipv4(Ipv4Address::from_octets(1, 2, 3, 4),
                         Ipv4Address::from_octets(5, 6, 7, 8))
                   .ip_nop_options(5)
                   .udp(1, 2)
                   .build();
  const auto ip = parse_ipv4(pkt.bytes(), kEthernetHeaderSize);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(ip->has_options());
  EXPECT_EQ(ip->ihl, 7);  // 5 NOPs padded to 8 bytes = 2 words
  const auto count = count_ipv4_options(ip->options);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 5);
}

TEST(PacketBuilder, TimestampOption) {
  Packet pkt = PacketBuilder()
                   .ipv4(Ipv4Address::from_octets(1, 2, 3, 4),
                         Ipv4Address::from_octets(5, 6, 7, 8))
                   .ip_timestamp_option(2)
                   .udp(1, 2)
                   .build();
  const auto ip = parse_ipv4(pkt.bytes(), kEthernetHeaderSize);
  ASSERT_TRUE(ip.has_value());
  ASSERT_FALSE(ip->options.empty());
  EXPECT_EQ(ip->options[0], kIpOptTimestamp);
}

TEST(PacketBuilder, TcpFrames) {
  Packet pkt = PacketBuilder()
                   .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                         Ipv4Address::from_octets(10, 0, 0, 2))
                   .tcp(4000, 443)
                   .build();
  const auto ip = parse_ipv4(pkt.bytes(), kEthernetHeaderSize);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, kIpProtoTcp);
  const auto tcp = parse_tcp(pkt.bytes(), kEthernetHeaderSize + 20);
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->src_port, 4000);
  EXPECT_EQ(tcp->dst_port, 443);
}

// --- build -> parse -> rebuild round trips -------------------------------
//
// Every header combination the adversarial synthesiser emits must survive
// a full parse/rebuild cycle byte-for-byte: the parsed view carries all the
// information the builder needs, and the rebuild recomputes identical
// lengths and checksums. This is what makes witness "materialisation"
// (adversary/adversary.cpp) safe — a rebuilt frame is the same frame.

namespace {

/// Rebuilds a frame from its parsed headers. Expects plain Ethernet/IPv4/
/// {UDP,TCP} (optionally with NOP/timestamp options re-added verbatim).
Packet rebuild_from_parse(const Packet& original) {
  const auto eth = parse_ethernet(original.bytes());
  EXPECT_TRUE(eth.has_value());
  PacketBuilder b;
  if (eth->ether_type != kEtherTypeIpv4) {
    b.eth(eth->src, eth->dst, eth->ether_type);
  } else {
    const auto ip = parse_ipv4(original.bytes(), kEthernetHeaderSize);
    EXPECT_TRUE(ip.has_value());
    b.eth(eth->src, eth->dst).ipv4(ip->src, ip->dst, ip->protocol, ip->ttl);
    // Re-add option bytes one option at a time (NOPs, multi-byte options;
    // trailing END padding is reapplied by build()).
    for (std::size_t i = 0; i < ip->options.size();) {
      const std::uint8_t kind = ip->options[i];
      if (kind == kIpOptEnd) break;
      if (kind == kIpOptNop) {
        b.ip_option(kIpOptNop);
        ++i;
        continue;
      }
      const std::uint8_t len = ip->options[i + 1];
      b.ip_option(kind, std::vector<std::uint8_t>(
                            ip->options.begin() + i + 2,
                            ip->options.begin() + i + len));
      i += len;
    }
    const std::size_t l4 = kEthernetHeaderSize + ip->header_size();
    if (ip->protocol == kIpProtoUdp) {
      const auto udp = parse_udp(original.bytes(), l4);
      EXPECT_TRUE(udp.has_value());
      b.udp(udp->src_port, udp->dst_port);
    } else if (ip->protocol == kIpProtoTcp) {
      const auto tcp = parse_tcp(original.bytes(), l4);
      EXPECT_TRUE(tcp.has_value());
      b.tcp(tcp->src_port, tcp->dst_port);
    }
  }
  b.frame_size(original.size());
  b.timestamp_ns(original.timestamp_ns()).in_port(original.in_port());
  return b.build();
}

void expect_round_trip(const Packet& original) {
  const Packet rebuilt = rebuild_from_parse(original);
  EXPECT_EQ(std::vector<std::uint8_t>(original.bytes().begin(),
                                      original.bytes().end()),
            std::vector<std::uint8_t>(rebuilt.bytes().begin(),
                                      rebuilt.bytes().end()));
  EXPECT_EQ(original.timestamp_ns(), rebuilt.timestamp_ns());
  EXPECT_EQ(original.in_port(), rebuilt.in_port());
  // IPv4 checksum must validate (sum over the header including the
  // checksum field is zero).
  const auto eth = parse_ethernet(original.bytes());
  if (eth && eth->ether_type == kEtherTypeIpv4) {
    const auto ip = parse_ipv4(original.bytes(), kEthernetHeaderSize);
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(internet_checksum(original.bytes().subspan(kEthernetHeaderSize,
                                                         ip->header_size())),
              0);
  }
}

}  // namespace

TEST(PacketBuilderRoundTrip, PlainUdp) {
  expect_round_trip(PacketBuilder()
                        .eth(MacAddress::from_u64(0x020000000123),
                             MacAddress::from_u64(0x020000000456))
                        .ipv4(Ipv4Address::from_octets(10, 1, 2, 3),
                              Ipv4Address::from_octets(198, 18, 7, 65))
                        .udp(4321, 80)
                        .timestamp_ns(77)
                        .in_port(3)
                        .build());
}

TEST(PacketBuilderRoundTrip, PlainTcp) {
  expect_round_trip(PacketBuilder()
                        .ipv4(Ipv4Address::from_octets(198, 18, 0, 9),
                              Ipv4Address::from_octets(10, 0, 0, 7),
                              kIpProtoTcp, 17)
                        .tcp(50000, 443)
                        .build());
}

TEST(PacketBuilderRoundTrip, NopOptions) {
  expect_round_trip(PacketBuilder()
                        .ipv4(Ipv4Address::from_octets(1, 2, 3, 4),
                              Ipv4Address::from_octets(5, 6, 7, 8))
                        .ip_nop_options(5)
                        .udp(1, 2)
                        .build());
}

TEST(PacketBuilderRoundTrip, TimestampOption) {
  expect_round_trip(PacketBuilder()
                        .ipv4(Ipv4Address::from_octets(1, 2, 3, 4),
                              Ipv4Address::from_octets(5, 6, 7, 8))
                        .ip_timestamp_option(3)
                        .udp(7, 9)
                        .build());
}

TEST(PacketBuilderRoundTrip, NonIpFrame) {
  expect_round_trip(PacketBuilder()
                        .eth(MacAddress::from_u64(0x020000100001),
                             MacAddress::broadcast(), kEtherTypeArp)
                        .timestamp_ns(12)
                        .build());
}

TEST(PacketBuilderRoundTrip, PaddedFrame) {
  expect_round_trip(PacketBuilder()
                        .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
                              Ipv4Address::from_octets(10, 0, 0, 2))
                        .udp(1234, 5678)
                        .frame_size(256)
                        .build());
}

TEST(PacketBuilderRoundTrip, WorkloadGeneratorFrames) {
  // The frames the generators (and therefore the adversary) actually emit.
  expect_round_trip(packet_for_tuple(tuple_for_index(42, true), 9, 0));
  expect_round_trip(packet_for_tuple(tuple_for_index(43, false), 10, 1));
}

TEST(CollidingTuples, LandInTheRequestedBucket) {
  const std::size_t buckets = 4096;
  const auto tuples = colliding_tuples(16, 5, buckets, /*hash_key=*/0x1234);
  ASSERT_EQ(tuples.size(), 16u);
  std::set<std::uint64_t> keys;
  for (const FiveTuple& t : tuples) {
    EXPECT_EQ(mix64(t.key() ^ 0x1234) & (buckets - 1), 5u);
    keys.insert(t.key());
  }
  EXPECT_EQ(keys.size(), tuples.size());  // distinct flows
}

TEST(Flow, ExtractFiveTuple) {
  const FiveTuple want{Ipv4Address::from_octets(10, 1, 2, 3),
                       Ipv4Address::from_octets(192, 0, 2, 9), 5555, 80,
                       kIpProtoUdp};
  Packet pkt = packet_for_tuple(want, 0);
  const auto got = extract_five_tuple(pkt);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
}

TEST(Flow, NonIpHasNoTuple) {
  EXPECT_FALSE(extract_five_tuple(invalid_packet()).has_value());
}

TEST(Flow, ReversedTuple) {
  const FiveTuple t{Ipv4Address{1}, Ipv4Address{2}, 10, 20, 6};
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip.value, 2u);
  EXPECT_EQ(r.dst_port, 10);
  EXPECT_NE(t.key(), r.key());
}

TEST(Flow, KeysDifferAcrossTuples) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    keys.insert(tuple_for_index(i).key());
  }
  EXPECT_EQ(keys.size(), 1000u);
}

TEST(Pcap, RoundTrip) {
  std::vector<Packet> packets;
  for (int i = 0; i < 10; ++i) {
    packets.push_back(packet_for_tuple(tuple_for_index(std::uint64_t(i)),
                                       1'000'000'000ULL + std::uint64_t(i) * 37));
  }
  const auto bytes = serialize_pcap(packets);
  const auto parsed = parse_pcap(bytes);
  ASSERT_EQ(parsed.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(parsed[i].timestamp_ns(), packets[i].timestamp_ns());
    ASSERT_EQ(parsed[i].size(), packets[i].size());
    EXPECT_TRUE(std::equal(parsed[i].bytes().begin(), parsed[i].bytes().end(),
                           packets[i].bytes().begin()));
  }
}

TEST(Pcap, FileRoundTrip) {
  std::vector<Packet> packets = {packet_for_tuple(tuple_for_index(1), 42)};
  const std::string path = ::testing::TempDir() + "/bolt_test.pcap";
  write_pcap(path, packets);
  const auto loaded = read_pcap(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].timestamp_ns(), 42u);
}

TEST(Workload, UniformDeterministic) {
  UniformSpec spec;
  spec.packet_count = 100;
  const auto a = uniform_random_traffic(spec);
  const auto b = uniform_random_traffic(spec);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(std::equal(a[i].bytes().begin(), a[i].bytes().end(),
                           b[i].bytes().begin()));
  }
}

TEST(Workload, ZipfIsDeterministicAndHeavyTailed) {
  ZipfSpec spec;
  spec.flow_pool = 512;
  spec.skew = 1.2;
  spec.packet_count = 20'000;
  const auto a = zipf_traffic(spec);
  const auto b = zipf_traffic(spec);
  ASSERT_EQ(a.size(), spec.packet_count);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(std::equal(a[i].bytes().begin(), a[i].bytes().end(),
                           b[i].bytes().begin()));
  }

  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& p : a) {
    const auto t = extract_five_tuple(p);
    ASSERT_TRUE(t.has_value());
    ++counts[t->key()];
  }
  // Many distinct flows appear, but the head dominates: the most popular
  // flow carries far more than its uniform share, and the top ~10% of
  // flows carry the majority of packets.
  EXPECT_GT(counts.size(), 100u);
  std::vector<std::size_t> sorted;
  for (const auto& [key, n] : counts) sorted.push_back(n);
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GT(sorted.front(), spec.packet_count / spec.flow_pool * 20);
  std::size_t top_decile = 0;
  for (std::size_t i = 0; i < sorted.size() / 10; ++i) top_decile += sorted[i];
  EXPECT_GT(top_decile, spec.packet_count / 2);

  // skew = 0 degenerates to (near-)uniform: the head flow stays small.
  ZipfSpec flat = spec;
  flat.skew = 0.0;
  std::map<std::uint64_t, std::size_t> flat_counts;
  for (const auto& p : zipf_traffic(flat)) {
    ++flat_counts[extract_five_tuple(p)->key()];
  }
  std::size_t flat_max = 0;
  for (const auto& [key, n] : flat_counts) flat_max = std::max(flat_max, n);
  EXPECT_LT(flat_max, spec.packet_count / spec.flow_pool * 5);
}

TEST(Workload, ChurnIntroducesNewFlows) {
  ChurnSpec spec;
  spec.active_flows = 16;
  spec.churn = 1.0;  // every packet starts a new flow
  spec.packet_count = 64;
  const auto packets = churn_traffic(spec);
  std::set<std::uint64_t> keys;
  for (const auto& p : packets) {
    const auto t = extract_five_tuple(p);
    ASSERT_TRUE(t.has_value());
    keys.insert(t->key());
  }
  EXPECT_EQ(keys.size(), 64u);
}

TEST(Workload, BridgeBroadcastFraction) {
  BridgeSpec spec;
  spec.broadcast_fraction = 1.0;
  spec.packet_count = 50;
  for (const auto& p : bridge_traffic(spec)) {
    const auto eth = parse_ethernet(p.bytes());
    ASSERT_TRUE(eth.has_value());
    EXPECT_TRUE(eth->dst.is_broadcast());
  }
}

TEST(Workload, CollidingKeysCollide) {
  const auto keys = colliding_keys(16, 3, 1024);
  ASSERT_EQ(keys.size(), 16u);
  std::set<std::uint64_t> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 16u);
  for (const std::uint64_t k : keys) {
    EXPECT_EQ(mix64(k) & 1023u, 3u);
  }
}

TEST(Workload, LpmTrafficMatchesDeclaredLengths) {
  LpmSpec spec;
  spec.min_prefix_len = 9;
  spec.max_prefix_len = 16;
  spec.packet_count = 200;
  spec.routes_per_length = 4;
  const auto wl = lpm_traffic(spec);
  ASSERT_EQ(wl.packets.size(), 200u);
  ASSERT_EQ(wl.matched_length.size(), 200u);
  for (const int l : wl.matched_length) {
    EXPECT_GE(l, spec.min_prefix_len);
    EXPECT_LE(l, 32);
  }
}

TEST(Workload, HeartbeatsTargetHealthPort) {
  HeartbeatSpec spec;
  spec.packet_count = 20;
  for (const auto& p : heartbeat_traffic(spec)) {
    const auto ip = parse_ipv4(p.bytes(), kEthernetHeaderSize);
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(ip->src.value >> 16, 0xac10u);
    const auto udp = parse_udp(p.bytes(), kEthernetHeaderSize + 20);
    ASSERT_TRUE(udp.has_value());
    EXPECT_EQ(udp->dst_port, spec.heartbeat_port);
  }
}

}  // namespace
}  // namespace bolt::net
