// The hunter's own contract (ISSUE 9 acceptance criteria):
//  * a deliberately seeded measurement fault (the epoch-straddle off-by-one
//    behind MonitorOptions::inject_straddle_bug) is FOUND — the hunt ends
//    with a violating trace — and ddmin shrinks it to a tiny witness
//    (<= 32 packets, 1-minimal);
//  * with the fault disabled the SAME seed and budget find nothing: a
//    clean contract yields zero violations;
//  * both directions are byte-deterministic per seed: hunt twice, get the
//    identical trace, report, and history;
//  * the minimiser keeps its promises independently of its own flags —
//    1-minimality is re-verified here by dropping each witness packet and
//    watching the violation vanish;
//  * epoch-boundary semantics (ISSUE 9 satellite): a packet landing at
//    exactly k*epoch_ns belongs to the NEW epoch on both sides of the
//    loop — shadow and monitor agree (zero mismatches, zero violations on
//    a clean replay of the straddling witness).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/hunter.h"
#include "adversary/minimize.h"
#include "adversary/report.h"
#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/mutate.h"
#include "net/packet.h"
#include "net/pcap.h"

namespace bolt::adversary {
namespace {

HunterOptions seeded_options(bool inject_bug, std::uint64_t seed = 7) {
  HunterOptions opts;
  opts.seed = seed;
  opts.adversary.seed = seed;
  opts.monitor.inject_straddle_bug = inject_bug;
  return opts;
}

struct Find {
  perf::PcvRegistry reg;
  perf::Contract contract{""};
  HunterResult hunt;
  MinimizeResult minimized;
};

/// One full seeded pipeline: generate the nat contract, hunt with the
/// injected straddle fault, minimise the find. Fresh state every call so
/// determinism tests compare truly independent runs.
Find run_seeded_find(std::uint64_t seed = 7) {
  Find f;
  core::NfTarget target;
  EXPECT_TRUE(core::make_named_target("nat", f.reg, target));
  core::ContractGenerator gen(f.reg);
  const core::GenerationResult generated = gen.generate(target.analysis());
  f.contract = generated.contract;
  const HunterOptions opts = seeded_options(true, seed);
  f.hunt = hunt("nat", f.contract, f.reg, opts, &generated.path_reports);
  if (f.hunt.violation_found || f.hunt.divergence_found) {
    MinimizeOptions mopts;
    mopts.adversary = opts.adversary;
    mopts.monitor = opts.monitor;
    f.minimized =
        minimize("nat", f.contract, f.reg, f.hunt.best.packets, mopts);
  }
  return f;
}

/// Shared find for the read-only assertions (the pipeline is deterministic,
/// so sharing one run loses nothing).
const Find& shared_find() {
  static const Find* f = new Find(run_seeded_find());
  return *f;
}

TEST(HunterSeeded, FindsTheSeededStraddleBug) {
  const Find& f = shared_find();
  std::string history;
  for (const std::string& line : f.hunt.history) history += "\n  " + line;
  EXPECT_TRUE(f.hunt.violation_found) << "history:" << history;
  EXPECT_FALSE(f.hunt.divergence_found);
  EXPECT_GT(f.hunt.fitness.violations, 0u);
  EXPECT_GT(f.hunt.report.monitor.violations, 0u);
  // The synthesised seed trace itself never straddles a boundary — the
  // find must come from the mutation search, not generation 0.
  EXPECT_GE(f.hunt.violation_generation, 1u);
}

TEST(HunterSeeded, MinimizedWitnessIsSmallAndStillViolating) {
  const Find& f = shared_find();
  ASSERT_TRUE(f.hunt.violation_found);
  EXPECT_TRUE(f.minimized.reproduced);
  EXPECT_TRUE(f.minimized.one_minimal);
  EXPECT_GT(f.minimized.report.monitor.violations, 0u);
  EXPECT_LE(f.minimized.minimized_packets, 32u)
      << "ddmin left " << f.minimized.minimized_packets << " of "
      << f.minimized.original_packets << " packets";
  EXPECT_LT(f.minimized.minimized_packets, f.minimized.original_packets);
  // The witness round-trips: plans cover every packet.
  EXPECT_EQ(f.minimized.trace.plans.size(),
            f.minimized.trace.packets.size());
}

TEST(HunterSeeded, WitnessStraddlesAnExactEpochBoundary) {
  // Epoch-boundary semantics regression. The fault only fires when a
  // packet's timestamp lands on k*epoch_ns exactly, so the minimised
  // witness must contain such a packet; and on a CLEAN monitor the same
  // straddling trace must replay with full shadow/monitor agreement —
  // both sides place the boundary packet in the NEW epoch, after the
  // sweep.
  const Find& f = shared_find();
  ASSERT_TRUE(f.minimized.reproduced);
  const std::uint64_t epoch_ns = f.minimized.trace.epoch_ns;
  ASSERT_GT(epoch_ns, 0u);
  bool straddles = false;
  for (const net::Packet& p : f.minimized.trace.packets) {
    if (p.timestamp_ns() > 0 && p.timestamp_ns() % epoch_ns == 0) {
      straddles = true;
    }
  }
  EXPECT_TRUE(straddles)
      << "minimised witness carries no exact-boundary packet";

  monitor::MonitorOptions clean;  // inject_straddle_bug = false
  const GapReport report =
      replay(f.minimized.trace, f.contract, f.reg, clean);
  EXPECT_EQ(report.mismatched, 0u);
  EXPECT_EQ(report.monitor.violations, 0u)
      << "clean monitor disagrees with the shadow on boundary membership";
}

TEST(HunterSeeded, HuntAndMinimizeAreByteDeterministicPerSeed) {
  const Find a = run_seeded_find();
  const Find b = run_seeded_find();
  ASSERT_TRUE(a.hunt.violation_found);
  ASSERT_TRUE(b.hunt.violation_found);
  EXPECT_EQ(a.hunt.violation_generation, b.hunt.violation_generation);
  EXPECT_EQ(a.hunt.replays, b.hunt.replays);
  EXPECT_EQ(a.hunt.history, b.hunt.history);
  EXPECT_EQ(net::serialize_pcap(a.hunt.best.packets),
            net::serialize_pcap(b.hunt.best.packets));
  EXPECT_EQ(net::serialize_pcap(a.minimized.trace.packets),
            net::serialize_pcap(b.minimized.trace.packets));
  EXPECT_EQ(a.minimized.replays, b.minimized.replays);
  EXPECT_EQ(gap_report_to_json(a.minimized.report),
            gap_report_to_json(b.minimized.report));
}

TEST(HunterClean, SameSeedAndBudgetFindNothingOnACleanMonitor) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  ASSERT_TRUE(core::make_named_target("nat", reg, target));
  core::ContractGenerator gen(reg);
  const core::GenerationResult generated = gen.generate(target.analysis());
  const HunterOptions opts = seeded_options(false);
  const HunterResult a =
      hunt("nat", generated.contract, reg, opts, &generated.path_reports);
  EXPECT_FALSE(a.violation_found) << gap_report_to_json(a.report);
  EXPECT_FALSE(a.divergence_found);
  EXPECT_EQ(a.fitness.violations, 0u);
  // The full budget was spent probing, not cut short.
  EXPECT_EQ(a.replays, opts.generations * opts.population + 1);
  // And the clean hunt is just as deterministic as the seeded one.
  const HunterResult b =
      hunt("nat", generated.contract, reg, opts, &generated.path_reports);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(net::serialize_pcap(a.best.packets),
            net::serialize_pcap(b.best.packets));
  EXPECT_EQ(gap_report_to_json(a.report), gap_report_to_json(b.report));
}

TEST(Minimizer, OneMinimalityHoldsUnderIndependentReverification) {
  // Do not trust MinimizeResult::one_minimal — re-derive it: dropping any
  // single packet of the witness must lose the violation under the same
  // oracle (bug included).
  const Find& f = shared_find();
  ASSERT_TRUE(f.minimized.one_minimal);
  const std::vector<net::Packet>& witness = f.minimized.trace.packets;
  ASSERT_GE(witness.size(), 2u);
  MinimizeOptions mopts;
  mopts.adversary = seeded_options(true).adversary;
  mopts.monitor = seeded_options(true).monitor;
  for (std::size_t drop = 0; drop < witness.size(); ++drop) {
    std::vector<net::Packet> candidate;
    for (std::size_t i = 0; i < witness.size(); ++i) {
      if (i != drop) candidate.push_back(witness[i]);
    }
    const AdversarialTrace trace =
        plan_packets("nat", f.contract, f.reg, candidate, mopts.adversary);
    const GapReport report =
        replay(trace, f.contract, f.reg, mopts.monitor);
    EXPECT_EQ(report.monitor.violations, 0u)
        << "witness still violates without packet " << drop
        << " — not 1-minimal";
    EXPECT_EQ(report.mismatched, 0u);
  }
}

TEST(Minimizer, NonViolatingInputIsReportedNotShrunk) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  ASSERT_TRUE(core::make_named_target("nat", reg, target));
  core::ContractGenerator gen(reg);
  const core::GenerationResult generated = gen.generate(target.analysis());
  AdversaryOptions aopts;
  aopts.seed = 7;
  const AdversarialTrace seed = adversarial_traffic(
      "nat", generated.contract, reg, aopts, &generated.path_reports);
  MinimizeOptions mopts;
  mopts.adversary = aopts;  // clean monitor: the seed trace never violates
  const MinimizeResult m =
      minimize("nat", generated.contract, reg, seed.packets, mopts);
  EXPECT_FALSE(m.reproduced);
  EXPECT_EQ(m.minimized_packets, seed.packets.size());
  EXPECT_EQ(m.replays, 1u);  // one reproduction attempt, nothing more
  EXPECT_EQ(m.report.monitor.violations, 0u);
}

TEST(Minimizer, ReplayCapYieldsACoarserStillViolatingWitness) {
  const Find& f = shared_find();
  ASSERT_TRUE(f.hunt.violation_found);
  MinimizeOptions mopts;
  mopts.adversary = seeded_options(true).adversary;
  mopts.monitor = seeded_options(true).monitor;
  mopts.max_replays = 3;  // reproduce + barely one bisection step
  const MinimizeResult m =
      minimize("nat", f.contract, f.reg, f.hunt.best.packets, mopts);
  EXPECT_TRUE(m.reproduced);
  // Not enough budget to verify 1-minimality — the claim must be withheld,
  // never vacuously made.
  EXPECT_FALSE(m.one_minimal);
  EXPECT_LE(m.replays, 3u);
  // But the truncated result still reproduces the violation.
  EXPECT_GT(m.report.monitor.violations, 0u);
  EXPECT_LE(m.minimized_packets, m.original_packets);
}

TEST(MutateMoves, PreserveGloballyMonotonicTimestamps) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  ASSERT_TRUE(core::make_named_target("nat", reg, target));
  core::ContractGenerator gen(reg);
  const core::GenerationResult generated = gen.generate(target.analysis());
  AdversaryOptions aopts;
  const AdversarialTrace seed = adversarial_traffic(
      "nat", generated.contract, reg, aopts, &generated.path_reports);
  std::vector<net::Packet> pkts = seed.packets;
  const std::size_t n = pkts.size();
  ASSERT_GE(n, 16u);
  // One of each move, at positions that exercise the clamping paths.
  EXPECT_TRUE(net::snap_to_boundary(pkts, n / 2, aopts.epoch_ns));
  EXPECT_TRUE(net::stretch_gap(pkts, n / 3, aopts.epoch_ns / 2));
  EXPECT_TRUE(net::swap_contents(pkts, 1, n - 2));
  EXPECT_TRUE(net::rotate_window(pkts, n / 4, 5));
  EXPECT_TRUE(net::duplicate_at(pkts, n / 5));
  for (std::size_t i = 1; i < pkts.size(); ++i) {
    ASSERT_LE(pkts[i - 1].timestamp_ns(), pkts[i].timestamp_ns())
        << "timestamps regress at packet " << i;
  }
}

TEST(MutateMoves, InvalidArgumentsAreRejectedNoOps) {
  std::vector<net::Packet> empty;
  EXPECT_FALSE(net::snap_to_boundary(empty, 0, 1000));
  EXPECT_FALSE(net::stretch_gap(empty, 0, 1));
  EXPECT_FALSE(net::duplicate_at(empty, 0));

  std::vector<net::Packet> one(1);
  one[0].set_timestamp_ns(5);
  EXPECT_FALSE(net::snap_to_boundary(one, 1, 1000));  // index out of range
  EXPECT_FALSE(net::snap_to_boundary(one, 0, 0));     // no epoch clock
  EXPECT_FALSE(net::swap_contents(one, 0, 0));        // degenerate swap
  EXPECT_FALSE(net::rotate_window(one, 0, 2));        // window exceeds size
  EXPECT_EQ(one[0].timestamp_ns(), 5u);
}

}  // namespace
}  // namespace bolt::adversary
