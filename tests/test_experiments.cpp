// End-to-end checks of the paper's evaluation scenarios: every scenario of
// Figure 1 / Table 3 must produce sound (prediction >= measurement)
// results, the IC/MA over-estimation must stay in the paper's single-digit
// band, and the cycle ratios must reproduce the paper's ordering.
#include <gtest/gtest.h>

#include "core/experiments.h"

namespace bolt::core {
namespace {

class ScenarioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioTest, PredictionsDominateMeasurements) {
  perf::PcvRegistry reg;
  Scenario scenario = make_scenario(GetParam(), reg);
  const ScenarioResult r = run_scenario(scenario, reg);

  ASSERT_GT(r.measured_ic, 0u);
  ASSERT_GT(r.measured_cycles, 0u);
  // Soundness on every metric.
  EXPECT_GE(r.predicted_ic, static_cast<std::int64_t>(r.measured_ic));
  EXPECT_GE(r.predicted_ma, static_cast<std::int64_t>(r.measured_ma));
  EXPECT_GE(r.predicted_cycles, static_cast<std::int64_t>(r.measured_cycles));
  // Tightness of the hardware-independent metrics (paper: <= 7.6%).
  EXPECT_LE(r.ic_overestimate(), 1.08) << GetParam();
  EXPECT_LE(r.ma_overestimate(), 1.08) << GetParam();
  // The cycle bound is conservative but within the paper's 10x ceiling.
  EXPECT_LE(r.cycles_ratio(), 10.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioTest,
    ::testing::ValuesIn(all_scenario_ids()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(ScenarioShape, PathologicalClassesDwarfTypicalOnes) {
  // The paper: unconstrained traffic with synthesised pathological state is
  // orders of magnitude more expensive than any typical class.
  perf::PcvRegistry reg1, reg2;
  Scenario nat1 = make_scenario("NAT1", reg1);
  Scenario nat3 = make_scenario("NAT3", reg2);
  const ScenarioResult patho = run_scenario(nat1, reg1);
  const ScenarioResult typical = run_scenario(nat3, reg2);
  EXPECT_GT(patho.measured_ic, typical.measured_ic * 1000);
  EXPECT_GT(patho.predicted_ic, typical.predicted_ic * 1000);
}

TEST(ScenarioShape, PathologicalCycleRatioExceedsTypical) {
  // Paper Table 3: ~9x for the unconstrained classes vs 2-4x typical.
  perf::PcvRegistry reg1, reg2;
  Scenario br1 = make_scenario("Br1", reg1);
  Scenario br2 = make_scenario("Br2", reg2);
  const ScenarioResult patho = run_scenario(br1, reg1);
  const ScenarioResult typical = run_scenario(br2, reg2);
  EXPECT_GT(patho.cycles_ratio(), typical.cycles_ratio() * 1.5);
  EXPECT_GT(patho.cycles_ratio(), 6.0);
  EXPECT_LT(typical.cycles_ratio(), 6.0);
}

TEST(ScenarioShape, LpmTierSplitMatchesClasses) {
  // LPM1 (>24-bit prefixes) must exercise the two-lookup tier; LPM2 the
  // one-lookup tier — and the two-lookup path must cost more.
  perf::PcvRegistry reg1, reg2;
  Scenario lpm1 = make_scenario("LPM1", reg1);
  Scenario lpm2 = make_scenario("LPM2", reg2);
  const ScenarioResult two = run_scenario(lpm1, reg1);
  const ScenarioResult one = run_scenario(lpm2, reg2);
  EXPECT_GT(two.measured_ic, one.measured_ic);
  EXPECT_GT(two.predicted_ic, one.predicted_ic);
}

TEST(ScenarioShape, ScenarioIdsAreStable) {
  const auto ids = all_scenario_ids();
  EXPECT_EQ(ids.size(), 14u);
  EXPECT_EQ(ids.front(), "NAT1");
  EXPECT_EQ(ids.back(), "LPM2");
}

TEST(ScenarioShape, UnknownScenarioAborts) {
  perf::PcvRegistry reg;
  EXPECT_DEATH(make_scenario("NOPE", reg), "unknown scenario");
}

}  // namespace
}  // namespace bolt::core
