// Fleet mode (monitor/follow.h + obs/fleet.h): the streaming monitor and
// the partial-state merger.
//
// The contracts pinned here are the operator-facing guarantees:
//  * a StreamMonitor fed packet-by-packet produces a final report and a
//    delta stream byte-identical to the batch engine over the same trace
//    (so a drained daemon reports exactly what a batch re-run would);
//  * an idle flush is provisional — it emits the open window early but
//    never perturbs the authoritative stream or the final report;
//  * N fleet instances over random partition-ownership splits, their
//    partials merged in random order with a duplicated file thrown in,
//    reconstruct the single-instance report and delta stream byte for
//    byte (the property 'bolt_cli merge' ships on);
//  * partials round-trip through their schema-versioned JSON exactly, and
//    the spool reader picks up precisely the files the naming scheme owns;
//  * PcapTail sees records appended chunk-by-chunk, torn mid-record
//    writes included — the --follow daemon's input contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/follow.h"
#include "monitor/monitor.h"
#include "net/pcap.h"
#include "net/workload.h"
#include "obs/delta.h"
#include "obs/fleet.h"
#include "support/io.h"

namespace bolt::obs {
namespace {

struct RouterFixture {
  perf::PcvRegistry reg;
  core::GenerationResult gen;
};

RouterFixture& router() {
  static RouterFixture* f = [] {
    auto* r = new RouterFixture;
    core::NfTarget target;
    EXPECT_TRUE(core::make_named_target("router", r->reg, target));
    core::ContractGenerator g(r->reg);
    r->gen = g.generate(target.analysis());
    return r;
  }();
  return *f;
}

const std::vector<net::Packet>& drift_packets() {
  static auto* p = new std::vector<net::Packet>([] {
    net::DriftSpec spec;
    spec.packets_per_window = 200;  // 11 windows x 200 = 2200 packets
    return net::drift_traffic(spec);
  }());
  return *p;
}

monitor::MonitorOptions stream_options() {
  monitor::MonitorOptions o;
  o.delta_every = 1;
  return o;
}

/// One streaming run: the emitted authoritative delta stream, the final
/// report, and the serialised fleet partials (exactly what the CLI spools).
struct StreamRun {
  std::string report_json;
  std::string delta_jsonl;
  std::vector<std::string> window_partials;
  std::string final_partial;
  std::size_t provisional_emits = 0;
  std::size_t alerts = 0;
};

StreamRun run_stream(const std::vector<net::Packet>& packets,
                     monitor::FleetOptions fleet,
                     std::size_t idle_flush_every = 0) {
  RouterFixture& f = router();
  const monitor::MonitorOptions opts = stream_options();
  std::vector<std::string> names;
  for (const auto& e : f.gen.contract.entries()) {
    names.push_back(e.input_class);
  }
  StreamRun out;
  auto on_window = [&](const monitor::ClosedWindow& cw) {
    if (cw.provisional) ++out.provisional_emits;
    if (cw.has_delta && !cw.provisional) {
      out.delta_jsonl += delta_window_to_json(cw.delta);
      out.delta_jsonl += '\n';
    }
    if (cw.provisional || cw.stats->packets == 0) return;
    WindowPartial wp;
    wp.nf = f.gen.contract.nf_name();
    wp.instance = fleet.instance;
    wp.instances = fleet.instances;
    wp.window = cw.window;
    wp.window_ns = cw.window_ns;
    for (std::size_t e = 0; e < cw.accums->size(); ++e) {
      const monitor::ClassAccum& acc = (*cw.accums)[e];
      if (acc.packets == 0) continue;
      wp.classes.push_back(names[e]);
      wp.accums.push_back(acc);
    }
    wp.packets = cw.stats->packets;
    wp.unattributed = cw.stats->unattributed;
    wp.first_unattributed = cw.stats->first_unattributed;
    wp.any_unattributed = cw.stats->any_unattributed;
    wp.epoch_sweeps = cw.stats->epoch_sweeps;
    wp.expired_idle = cw.stats->expired_idle;
    wp.high_water = cw.stats->high_water;
    wp.late_packets = cw.stats->late_packets;
    out.window_partials.push_back(window_partial_to_json(wp));
  };
  monitor::StreamMonitor sm(f.gen.contract, f.reg,
                            monitor::MonitorEngine::named_factory("router"),
                            opts, fleet, on_window);
  std::size_t fed = 0;
  for (const net::Packet& p : packets) {
    sm.feed(p);
    if (idle_flush_every > 0 && ++fed % idle_flush_every == 0) {
      sm.idle_flush();
    }
  }
  monitor::StreamResult res = sm.finish();
  out.report_json = monitor::report_to_json(res.report);
  out.alerts = res.observations.alerts.size();
  FinalPartial fp;
  fp.nf = f.gen.contract.nf_name();
  fp.instance = fleet.instance;
  fp.instances = fleet.instances;
  fp.stream_packets = sm.packets_fed();
  fp.partitions = std::max<std::size_t>(std::size_t{1}, opts.partitions);
  fp.cycles_checked = opts.check_cycles;
  fp.epoch_ns = opts.epoch_ns;
  fp.max_offenders = opts.max_offenders;
  fp.entries = names;
  fp.residents = res.report.state_residents;
  fp.state_tracked = res.report.state_tracked;
  out.final_partial = final_partial_to_json(fp);
  return out;
}

// ---------------------------------------------------------------------------
// Streaming vs batch.

TEST(StreamMonitor, MatchesBatchByteForByte) {
  RouterFixture& f = router();
  monitor::MonitorEngine engine(f.gen.contract, f.reg, stream_options());
  RunObservations observations;
  const monitor::MonitorReport batch =
      engine.run(drift_packets(),
                 monitor::MonitorEngine::named_factory("router"), nullptr,
                 &observations);
  std::string batch_deltas;
  for (const DeltaWindow& w : observations.deltas) {
    batch_deltas += delta_window_to_json(w);
    batch_deltas += '\n';
  }
  const StreamRun stream = run_stream(drift_packets(), {});
  EXPECT_EQ(monitor::report_to_json(batch), stream.report_json);
  EXPECT_EQ(batch_deltas, stream.delta_jsonl);
  EXPECT_EQ(observations.alerts.size(), stream.alerts);
  ASSERT_GE(observations.deltas.size(), 10u);  // the run exercises windows
  EXPECT_GT(stream.alerts, 0u);  // and the drift detector fires streaming
}

TEST(StreamMonitor, IdleFlushIsProvisionalAndDoesNotPerturbTheRun) {
  const StreamRun plain = run_stream(drift_packets(), {});
  const StreamRun flushed = run_stream(drift_packets(), {},
                                       /*idle_flush_every=*/97);
  EXPECT_GT(flushed.provisional_emits, 0u);
  EXPECT_EQ(plain.report_json, flushed.report_json);
  EXPECT_EQ(plain.delta_jsonl, flushed.delta_jsonl);
  EXPECT_EQ(plain.window_partials, flushed.window_partials);
  EXPECT_EQ(plain.final_partial, flushed.final_partial);
}

TEST(StreamMonitor, DeltaStreamIsOneCompleteJsonObjectPerLine) {
  const StreamRun stream = run_stream(drift_packets(), {});
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < stream.delta_jsonl.size()) {
    const std::size_t end = stream.delta_jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // every line newline-terminated
    const std::string line = stream.delta_jsonl.substr(start, end - start);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // Balanced braces outside strings: the line is a whole JSON object,
    // never a torn prefix — what a tail -f of --delta-out relies on.
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        EXPECT_GE(depth, 0);
      }
    }
    EXPECT_EQ(depth, 0) << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_GE(lines, 10u);
}

// ---------------------------------------------------------------------------
// Fleet splits + merge.

TEST(Fleet, RandomSplitsMergeByteForByte) {
  const StreamRun single = run_stream(drift_packets(), {});
  std::mt19937_64 rng(0xB017'F1EE7u);
  for (const std::uint32_t instances : {2u, 5u, 8u}) {
    // Random partition -> instance ownership, shared by the whole fleet.
    monitor::FleetOptions base;
    base.instances = instances;
    base.owners.resize(stream_options().partitions);
    for (auto& o : base.owners) {
      o = static_cast<std::uint32_t>(rng() % instances);
    }
    std::vector<std::string> window_files;
    std::vector<std::string> final_files;
    for (std::uint32_t i = 0; i < instances; ++i) {
      monitor::FleetOptions fleet = base;
      fleet.instance = i;
      const StreamRun run = run_stream(drift_packets(), fleet);
      window_files.insert(window_files.end(), run.window_partials.begin(),
                          run.window_partials.end());
      final_files.push_back(run.final_partial);
    }
    // A retried upload: one duplicated window partial, verbatim.
    ASSERT_FALSE(window_files.empty());
    window_files.push_back(window_files[rng() % window_files.size()]);
    // Merge order must not matter.
    std::shuffle(window_files.begin(), window_files.end(), rng);
    std::shuffle(final_files.begin(), final_files.end(), rng);

    std::vector<WindowPartial> windows;
    for (const std::string& s : window_files) {
      windows.push_back(parse_window_partial(s));
    }
    std::vector<FinalPartial> finals;
    for (const std::string& s : final_files) {
      finals.push_back(parse_final_partial(s));
    }
    const FleetMergeResult merged = merge_partials(windows, finals, {});
    std::string merged_deltas;
    for (const DeltaWindow& w : merged.observations.deltas) {
      merged_deltas += delta_window_to_json(w);
      merged_deltas += '\n';
    }
    EXPECT_EQ(single.report_json, monitor::report_to_json(merged.report))
        << "instances=" << instances;
    EXPECT_EQ(single.delta_jsonl, merged_deltas) << "instances=" << instances;
    EXPECT_EQ(single.alerts, merged.observations.alerts.size());
  }
}

TEST(Fleet, SubsetOfFinalsStillMerges) {
  // An instance drained early (no final partial) must not sink the merge:
  // stream length is the max over the finals that did land.
  monitor::FleetOptions f0;
  f0.instances = 2;
  f0.instance = 0;
  monitor::FleetOptions f1 = f0;
  f1.instance = 1;
  const StreamRun a = run_stream(drift_packets(), f0);
  const StreamRun b = run_stream(drift_packets(), f1);
  std::vector<WindowPartial> windows;
  for (const std::string& s : a.window_partials) {
    windows.push_back(parse_window_partial(s));
  }
  for (const std::string& s : b.window_partials) {
    windows.push_back(parse_window_partial(s));
  }
  std::vector<FinalPartial> finals;
  finals.push_back(parse_final_partial(a.final_partial));
  const FleetMergeResult merged = merge_partials(windows, finals, {});
  // Every window landed, so the per-class totals still cover the whole
  // stream; only instance 1's resident-state count is missing.
  EXPECT_EQ(merged.report.attributed + merged.report.unattributed,
            drift_packets().size());
}

// ---------------------------------------------------------------------------
// Partial schema round-trips + spool naming.

TEST(Fleet, PartialsRoundTripThroughJsonExactly) {
  monitor::FleetOptions fleet;
  fleet.instances = 3;
  fleet.instance = 2;
  const StreamRun run = run_stream(drift_packets(), fleet);
  ASSERT_FALSE(run.window_partials.empty());
  for (const std::string& s : run.window_partials) {
    EXPECT_EQ(window_partial_to_json(parse_window_partial(s)), s);
  }
  EXPECT_EQ(final_partial_to_json(parse_final_partial(run.final_partial)),
            run.final_partial);
}

TEST(Fleet, SpoolReaderPicksUpExactlyItsOwnFiles) {
  const std::string dir = testing::TempDir() + "bolt_spool_test";
  ASSERT_EQ(::system(("rm -rf '" + dir + "' && mkdir -p '" + dir + "'")
                         .c_str()),
            0);
  monitor::FleetOptions fleet;
  fleet.instances = 2;
  const StreamRun run = run_stream(drift_packets(), fleet);
  ASSERT_GE(run.window_partials.size(), 2u);
  const WindowPartial w0 = parse_window_partial(run.window_partials[0]);
  const WindowPartial w1 = parse_window_partial(run.window_partials[1]);
  ASSERT_TRUE(support::write_file(
      spool_window_path(dir, "router", 0, w0.window),
      run.window_partials[0]));
  ASSERT_TRUE(support::write_file(
      spool_window_path(dir, "router", 0, w1.window),
      run.window_partials[1]));
  ASSERT_TRUE(support::write_file(spool_final_path(dir, "router", 0),
                                  run.final_partial));
  // Foreign files the reader must ignore: another nf, non-json noise.
  ASSERT_TRUE(support::write_file(dir + "/nat.i0.w3.json", "not parsed"));
  ASSERT_TRUE(support::write_file(dir + "/README", "not a partial"));
  std::vector<WindowPartial> windows;
  std::vector<FinalPartial> finals;
  read_spool(dir, "router", &windows, &finals);
  EXPECT_EQ(windows.size(), 2u);
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(final_partial_to_json(finals[0]), run.final_partial);
  // Missing directory: empty result, not an error.
  windows.clear();
  finals.clear();
  read_spool(dir + "/nope", "router", &windows, &finals);
  EXPECT_TRUE(windows.empty());
  EXPECT_TRUE(finals.empty());
}

// ---------------------------------------------------------------------------
// PcapTail: the --follow daemon's input contract.

TEST(PcapTail, SeesRecordsAppendedAcrossTornWrites) {
  net::ZipfSpec spec;
  spec.packet_count = 500;
  const std::vector<net::Packet> packets = net::zipf_traffic(spec);
  const std::vector<std::uint8_t> bytes = net::serialize_pcap(packets);
  const std::string path = testing::TempDir() + "bolt_tail_test.pcap";
  std::remove(path.c_str());

  net::PcapTail tail(path);
  EXPECT_TRUE(tail.poll().empty());  // file does not exist yet
  EXPECT_FALSE(tail.header_seen());

  // Append in chunks whose boundaries tear the global header and packet
  // records; every byte must surface exactly once, in order.
  const std::size_t cuts[] = {10, 40, bytes.size() / 3,
                              2 * bytes.size() / 3 + 7, bytes.size()};
  std::vector<net::Packet> got;
  std::size_t written = 0;
  for (const std::size_t cut : cuts) {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data() + written, 1, cut - written, f);
    std::fclose(f);
    written = cut;
    const std::vector<net::Packet> chunk = tail.poll();
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_TRUE(tail.header_seen());
  EXPECT_TRUE(tail.poll().empty());  // drained
  ASSERT_EQ(got.size(), packets.size());
  EXPECT_EQ(net::serialize_pcap(got), bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bolt::obs
