// CLI help lockdown. The usage text lives in the library
// (core/cli_usage.cpp) precisely so it can be golden-tested here: every
// knob the monitor/adversary grows must land in the help, and the help
// must not drift from what the flag parser actually accepts. Regenerate
// the golden with tools/regen_goldens.sh after an intentional change.
#include "core/cli_usage.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bolt::core {
namespace {

std::string golden_path() {
  return std::string(BOLT_TEST_DATA_DIR) + "/cli_usage.txt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CliHelp, MatchesGoldenByteForByte) {
  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing golden: " << golden_path();
  EXPECT_EQ(std::string(cli_usage_text()), golden)
      << "help text drifted from tests/data/cli_usage.txt — if the change "
         "is intentional, run tools/regen_goldens.sh";
}

TEST(CliHelp, DocumentsEveryMonitorFlag) {
  // The flags cmd_monitor accepts (tools/bolt_cli.cpp). PR 5 shipped the
  // --grouping enum with no CLI flag and no help line; this list is the
  // guard against the next such gap.
  const std::vector<std::string> flags = {
      "--contract", "--workload",  "--packets",  "--partitions",
      "--shards",   "--grouping",  "--threads",  "--batch",
      "--no-pipeline", "--epoch-ns", "--violation-threshold",
      "--inflate",  "--no-cycles", "--pcap",     "--json",
      "--report",   "--delta-every", "--delta-out", "--metrics-out",
      "--metrics-format", "--watch", "--follow", "--spool", "--fleet",
      "--idle-flush-ns", "--idle-exit-ms", "--help",
  };
  const std::string help = cli_usage_text();
  for (const std::string& flag : flags) {
    EXPECT_NE(help.find(flag), std::string::npos)
        << "monitor flag " << flag << " missing from the help text";
  }
}

TEST(CliHelp, DocumentsGroupingPolicies) {
  const std::string help = cli_usage_text();
  EXPECT_NE(help.find("roundrobin"), std::string::npos);
  EXPECT_NE(help.find("lqf"), std::string::npos);
}

TEST(CliHelp, EndsWithNewline) {
  const std::string help = cli_usage_text();
  ASSERT_FALSE(help.empty());
  EXPECT_EQ(help.back(), '\n');
}

}  // namespace
}  // namespace bolt::core
