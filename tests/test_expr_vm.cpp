// The compiled-expression VM's contract: bytecode evaluation (scalar and
// batch) is bit-identical to the tree-walk PerfExpr::eval on any
// polynomial — randomized shapes up to degree >= 3, empty and constant
// expressions, negative and overflow-adjacent coefficients — and the
// compiler actually folds/factors (instruction-count sanity checks).
#include <gtest/gtest.h>

#include <vector>

#include "perf/expr_vm.h"
#include "perf/perf_expr.h"
#include "support/random.h"

namespace bolt::perf {
namespace {

/// Builds a random polynomial over `pcv_count` PCVs (ids 0..pcv_count-1).
PerfExpr random_poly(support::Rng& rng, std::size_t pcv_count,
                     std::size_t max_terms, int max_degree,
                     std::int64_t max_coeff) {
  PerfExpr e;
  const std::size_t terms = rng.below(max_terms + 1);
  for (std::size_t t = 0; t < terms; ++t) {
    Monomial m;
    const int degree = static_cast<int>(rng.below(max_degree + 1));
    for (int d = 0; d < degree; ++d) {
      m = m * Monomial::pcv(static_cast<PcvId>(rng.below(pcv_count)));
    }
    std::int64_t c = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(max_coeff)));
    if (rng.chance(0.2)) c = -c;  // contracts are non-negative; the VM is not
    e += PerfExpr::term(c, m);
  }
  return e;
}

PcvBinding random_binding(support::Rng& rng, std::size_t pcv_count,
                          std::uint64_t max_value) {
  PcvBinding b;
  for (PcvId id = 0; id < pcv_count; ++id) {
    if (rng.chance(0.25)) continue;  // unbound PCVs read as 0
    b.set(id, rng.below(max_value + 1));
  }
  return b;
}

TEST(ExprVm, EmptyAndConstantExpressions) {
  const CompiledExpr zero = CompiledExpr::compile(PerfExpr{});
  EXPECT_EQ(zero.eval(PcvBinding{}), 0);
  EXPECT_EQ(zero.slot_count(), 0u);

  const CompiledExpr c = CompiledExpr::compile(PerfExpr::constant(882));
  EXPECT_EQ(c.eval(PcvBinding{}), 882);
  EXPECT_EQ(c.instruction_count(), 1u);  // folds to a single kConst

  const CompiledExpr neg = CompiledExpr::compile(PerfExpr::constant(-7));
  EXPECT_EQ(neg.eval(PcvBinding{}), -7);
}

TEST(ExprVm, Table4ShapeMatchesTreeWalkAndFactors) {
  // 245*e + 144*c + 36*t + 82*e*c + 19*e*t + 882 (paper Table 4).
  const PcvId e = 0, c = 1, t = 2;
  PerfExpr expr;
  expr += PerfExpr::term(245, Monomial::pcv(e));
  expr += PerfExpr::term(144, Monomial::pcv(c));
  expr += PerfExpr::term(36, Monomial::pcv(t));
  expr += PerfExpr::term(82, Monomial::pcv(e) * Monomial::pcv(c));
  expr += PerfExpr::term(19, Monomial::pcv(e) * Monomial::pcv(t));
  expr += PerfExpr::constant(882);

  const CompiledExpr vm = CompiledExpr::compile(expr);
  support::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const PcvBinding bind = random_binding(rng, 3, 1 << 20);
    ASSERT_EQ(vm.eval(bind), expr.eval(bind)) << vm.str();
  }
  // Horner on e: e*(245 + 82*c + 19*t) + 144*c + 36*t + 882.
  // Naive term-by-term is 6 multiplies for the products alone plus adds;
  // the factored form needs at most 5 multiplies and 5 adds + loads/consts.
  EXPECT_LE(vm.instruction_count(), 20u) << vm.str();
}

TEST(ExprVm, RandomizedEquivalenceScalar) {
  support::Rng rng(1234);
  for (int round = 0; round < 400; ++round) {
    // Degree up to 4, coefficients up to 2^40, bindings up to 2^5: products
    // stay within int64 (overflow-adjacent, but defined in the tree walk).
    const PerfExpr expr = random_poly(rng, 6, 10, 4, std::int64_t{1} << 40);
    const CompiledExpr vm = CompiledExpr::compile(expr);
    for (int i = 0; i < 20; ++i) {
      const PcvBinding bind = random_binding(rng, 6, 31);
      ASSERT_EQ(vm.eval(bind), expr.eval(bind))
          << "round " << round << ": " << vm.str();
    }
  }
}

TEST(ExprVm, RandomizedEquivalenceBatch) {
  support::Rng rng(99);
  for (int round = 0; round < 60; ++round) {
    const PerfExpr expr = random_poly(rng, 5, 8, 3, std::int64_t{1} << 32);
    const CompiledExpr vm = CompiledExpr::compile(expr);
    const std::size_t stride = 5;
    // An odd batch size exercises the partial trailing lane block.
    const std::size_t count = 1 + rng.below(300);
    std::vector<std::uint64_t> slots(stride * count);
    std::vector<PcvBinding> binds(count);
    for (std::size_t row = 0; row < count; ++row) {
      binds[row] = random_binding(rng, 5, 63);
      for (const auto& [id, v] : binds[row].values()) {
        slots[row * stride + id] = v;
      }
    }
    std::vector<std::int64_t> out(count);
    vm.eval_batch(slots.data(), stride, count, out.data());
    for (std::size_t row = 0; row < count; ++row) {
      ASSERT_EQ(out[row], expr.eval(binds[row])) << "round " << round;
    }
  }
}

TEST(ExprVm, CseSharesRepeatedStructure) {
  // (1 + e*c) appears in two places once factored: e*c*t + e*c + 5.
  const PcvId e = 0, c = 1, t = 2;
  PerfExpr expr;
  expr += PerfExpr::term(1, Monomial::pcv(e) * Monomial::pcv(c) * Monomial::pcv(t));
  expr += PerfExpr::term(1, Monomial::pcv(e) * Monomial::pcv(c));
  expr += PerfExpr::constant(5);
  const CompiledExpr vm = CompiledExpr::compile(expr);
  // Loads e, c, t at most once each.
  support::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const PcvBinding bind = random_binding(rng, 3, 1 << 10);
    ASSERT_EQ(vm.eval(bind), expr.eval(bind)) << vm.str();
  }
  EXPECT_LE(vm.instruction_count(), 9u) << vm.str();
}

}  // namespace
}  // namespace bolt::perf
