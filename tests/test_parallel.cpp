// The parallel pipeline's contract: bit-identical results at any thread
// count. Contracts for the NAT, the bridge, and the firewall->router chain
// are generated at 1, 2, and 8 threads and compared byte-for-byte as JSON;
// the executor's canonicalized paths are compared structurally; and the
// thread pool itself is unit-tested (full index coverage, exception
// propagation).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/experiments.h"
#include "core/scenarios.h"
#include "nf/firewall.h"
#include "perf/contract_io.h"
#include "support/thread_pool.h"

namespace bolt::core {
namespace {

// ---------------------------------------------------------------- pool --

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(support::resolve_threads(0), 1u);
  EXPECT_EQ(support::resolve_threads(3), 3u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HonoursBeginOffset) {
  support::ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  support::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  support::ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

// ------------------------------------------------------------ executor --

/// Serializes every canonicalized path of a chain exploration, symbol ids
/// included — this must not depend on how many workers explored.
std::string explore_chain_fingerprint(std::size_t threads) {
  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  symbex::ExecutorOptions opts;
  opts.threads = threads;
  symbex::Executor executor({&firewall, &router}, {}, opts);
  const std::vector<symbex::PathResult> paths = executor.run();
  EXPECT_GT(paths.size(), 0u);

  auto namer = [&](symbex::SymId id) {
    return executor.symbols().name(id) + "#" + std::to_string(id);
  };
  std::string out;
  for (const symbex::PathResult& p : paths) {
    out += p.class_label();
    out += p.action == symbex::PathAction::kForward ? " ->F" : " ->D";
    for (const auto& c : p.constraints) out += " & " + c->str(namer);
    if (p.out_port != nullptr) out += " port=" + p.out_port->str(namer);
    out += '\n';
  }
  return out;
}

TEST(ParallelExecutor, CanonicalPathsIdenticalAcrossThreadCounts) {
  const std::string t1 = explore_chain_fingerprint(1);
  EXPECT_EQ(t1, explore_chain_fingerprint(2));
  EXPECT_EQ(t1, explore_chain_fingerprint(8));
}

TEST(ParallelExecutor, StatsIdenticalAcrossThreadCounts) {
  const ir::Program firewall = nf::Firewall::program();
  auto stats_at = [&](std::size_t threads) {
    symbex::ExecutorOptions opts;
    opts.threads = threads;
    symbex::Executor executor({&firewall}, {}, opts);
    (void)executor.run();
    return executor.stats();
  };
  const symbex::ExecutorStats s1 = stats_at(1);
  const symbex::ExecutorStats s4 = stats_at(4);
  EXPECT_EQ(s1.completed_paths, s4.completed_paths);
  EXPECT_EQ(s1.pruned_branches, s4.pruned_branches);
  EXPECT_EQ(s1.abandoned_paths, s4.abandoned_paths);
}

/// max_paths truncation is canonical: the budget keeps the first N paths
/// in canonical signature order — the same N at any thread count, and a
/// prefix of the untruncated canonical path set.
TEST(ParallelExecutor, MaxPathsTruncationIsCanonical) {
  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  auto fingerprint = [&](std::size_t threads, std::size_t max_paths,
                         std::size_t* truncated = nullptr) {
    symbex::ExecutorOptions opts;
    opts.threads = threads;
    opts.max_paths = max_paths;
    symbex::Executor executor({&firewall, &router}, {}, opts);
    const std::vector<symbex::PathResult> paths = executor.run();
    if (truncated != nullptr) *truncated = executor.stats().truncated_paths;
    auto namer = [&](symbex::SymId id) {
      return executor.symbols().name(id) + "#" + std::to_string(id);
    };
    std::string out;
    for (const symbex::PathResult& p : paths) {
      out += p.class_label();
      for (const auto& c : p.constraints) out += " & " + c->str(namer);
      out += '\n';
    }
    return out;
  };

  // The chain has more than 5 paths, so a budget of 5 truncates.
  std::size_t truncated = 0;
  const std::string full = fingerprint(1, 4096, &truncated);
  EXPECT_EQ(truncated, 0u);
  const std::string t1 = fingerprint(1, 5, &truncated);
  EXPECT_GT(truncated, 0u);
  EXPECT_EQ(t1, fingerprint(2, 5));
  EXPECT_EQ(t1, fingerprint(8, 5));

  // Truncated output = the first lines of the full canonical output.
  EXPECT_EQ(full.compare(0, t1.size(), t1), 0)
      << "truncated set is not a canonical prefix:\n"
      << t1 << "\n-- full --\n" << full;

  // Degenerate budget: a zero budget keeps nothing (and must not crash).
  EXPECT_EQ(fingerprint(2, 0, &truncated), "");
  EXPECT_GT(truncated, 0u);
}

// ------------------------------------------------------------ contracts --

enum class Subject { kNat, kBridge, kChain, kStatefulChain };

std::string contract_json(Subject subject, std::size_t threads,
                          std::size_t max_paths = 4096) {
  perf::PcvRegistry reg;
  BoltOptions opts;
  opts.threads = threads;
  opts.executor.max_paths = max_paths;

  NfInstance instance;
  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  dslib::MethodTable no_methods;
  NfAnalysis analysis;
  switch (subject) {
    case Subject::kNat:
      instance = make_nat(reg, default_nat_config());
      analysis = instance.analysis();
      break;
    case Subject::kBridge:
      instance = make_bridge(reg, default_bridge_config());
      analysis = instance.analysis();
      break;
    case Subject::kChain:
      analysis.name = "firewall+router";
      analysis.programs = {&firewall, &router};
      analysis.methods = &no_methods;
      break;
    case Subject::kStatefulChain:
      // The paper's joint chain analysis with a *stateful* stage: the NAT's
      // model forks per abstract-state case between two stateless NFs, so
      // work stealing sees model forks, branch forks, and loop unrolls.
      instance = make_nat(reg, default_nat_config());
      analysis = instance.analysis();
      analysis.name = "firewall+nat";
      analysis.programs = {&firewall, analysis.programs[0]};
      break;
  }

  ContractGenerator gen(reg, opts);
  const GenerationResult result = gen.generate(analysis);
  // Every subject solves fully: the stateful chain's historically-unknown
  // fw→NAT path is now pruned as infeasible by the truthiness-view
  // propagation (see StatefulChainUnsolvedPin). The count stays part of
  // the fingerprint so a regression shows up at every thread count.
  EXPECT_EQ(result.unsolved_paths, 0u);
  EXPECT_GT(result.total_paths, 0u);

  // Path reports must come back in canonical order with identical keys,
  // not just fold into the same contract.
  std::string json = "unsolved=" + std::to_string(result.unsolved_paths) +
                     "\n" + perf::contract_to_json(result.contract, reg);
  json += "\n-- path reports --\n";
  for (const PathReport& r : result.path_reports) {
    json += r.class_key + " ic=" +
            std::to_string(r.stateless_instructions) + " ma=" +
            std::to_string(r.stateless_accesses) + " cy=" +
            std::to_string(r.stateless_cycles) + "\n";
  }
  return json;
}

class ContractDeterminism : public ::testing::TestWithParam<Subject> {};

TEST_P(ContractDeterminism, BitIdenticalAtOneTwoEightThreads) {
  const std::string t1 = contract_json(GetParam(), 1);
  const std::string t2 = contract_json(GetParam(), 2);
  const std::string t8 = contract_json(GetParam(), 8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

INSTANTIATE_TEST_SUITE_P(NfSubjects, ContractDeterminism,
                         ::testing::Values(Subject::kNat, Subject::kBridge,
                                           Subject::kChain,
                                           Subject::kStatefulChain),
                         [](const ::testing::TestParamInfo<Subject>& info) {
                           switch (info.param) {
                             case Subject::kNat: return "nat";
                             case Subject::kBridge: return "bridge";
                             case Subject::kChain: return "chain";
                             case Subject::kStatefulChain:
                               return "stateful_chain";
                           }
                           return "unknown";
                         });

/// Work stealing + canonical truncation: a tight path budget must yield
/// byte-identical contracts at 1, 2, and 8 threads too (the budget keeps
/// the canonical prefix of the signature-sorted path set regardless of
/// which worker finished which path).
TEST(ContractDeterminismTruncated, BitIdenticalAtOneTwoEightThreads) {
  const std::string t1 = contract_json(Subject::kChain, 1, 5);
  EXPECT_EQ(t1, contract_json(Subject::kChain, 2, 5));
  EXPECT_EQ(t1, contract_json(Subject::kChain, 8, 5));
  const std::string s1 = contract_json(Subject::kStatefulChain, 1, 6);
  EXPECT_EQ(s1, contract_json(Subject::kStatefulChain, 2, 6));
  EXPECT_EQ(s1, contract_json(Subject::kStatefulChain, 8, 6));
}

/// ROADMAP open-item pin, resolved: the fw->NAT chain used to carry
/// exactly ONE path whose bounded search exhausted — the firewall asserts
/// the protocol disjunction ((proto==6)|(proto==17)) and NAT's invalid
/// branch asserts the *same interned node* == 0, a contradiction the
/// interval pass could not see (a disjunction pins no single symbol's
/// interval) and the bounded search could only report as kUnknown. The
/// solver now records every asserted guard's truthiness as a view on its
/// own interned node, so the X ∧ (X == 0) pair is pruned as unsat at the
/// fork. This pin asserts the resolved state: zero unsolved paths, the
/// infeasible fork never completes (11 paths, down from 12), and the
/// contract is unchanged. A propagator/search change that re-introduces an
/// unsolved path — or prunes a *feasible* one — must show up here.
TEST(StatefulChainUnsolvedPin, InfeasibleNatInvalidPathIsPrunedNotUnknown) {
  for (const std::size_t threads : {1u, 4u}) {
    perf::PcvRegistry reg;
    NfInstance instance = make_nat(reg, default_nat_config());
    const ir::Program firewall = nf::Firewall::program();
    NfAnalysis analysis = instance.analysis();
    analysis.name = "firewall+nat";
    analysis.programs = {&firewall, analysis.programs[0]};

    BoltOptions opts;
    opts.threads = threads;
    ContractGenerator gen(reg, opts);
    const GenerationResult result = gen.generate(analysis);

    // No path exhausts its search anymore, at any thread count; the
    // infeasible firewall:no_options/nat:invalid fork is pruned before it
    // completes, so the chain explores 11 full paths instead of 12.
    EXPECT_EQ(result.unsolved_paths, 0u) << "threads=" << threads;
    EXPECT_EQ(result.total_paths, 11u) << "threads=" << threads;
    for (const PathReport& report : result.path_reports) {
      EXPECT_TRUE(report.solved) << report.class_key;
      EXPECT_EQ(report.class_key.find("nat:invalid"), std::string::npos)
          << report.class_key;
    }

    // The contract is exactly what it was when the path sat unsolved: the
    // pruned region never produced an entry (no concrete input existed),
    // and every feasible path still coalesces as before.
    EXPECT_EQ(result.contract.entries().size(), 8u);
    for (const auto& entry : result.contract.entries()) {
      EXPECT_EQ(entry.input_class.find("nat:invalid"), std::string::npos)
          << entry.input_class;
    }
  }
}

/// The new hot-path stats: solver_calls is deterministic (one per
/// feasibility probe on the deterministic exploration tree); steals can
/// only happen when more than one worker exists.
TEST(ParallelExecutor, HotPathStatsAreSane) {
  const ir::Program firewall = nf::Firewall::program();
  const ir::Program router = nf::StaticRouter::program();
  auto stats_at = [&](std::size_t threads) {
    symbex::ExecutorOptions opts;
    opts.threads = threads;
    symbex::Executor executor({&firewall, &router}, {}, opts);
    (void)executor.run();
    return executor.stats();
  };
  const symbex::ExecutorStats s1 = stats_at(1);
  EXPECT_EQ(s1.steal_count, 0u) << "one worker cannot steal from itself";
  EXPECT_GT(s1.solver_calls, 0u);
  // Every memoized-search consult belongs to some probe; probes that the
  // verified-prefix fast path settles consult neither side of the cache.
  EXPECT_LE(s1.feas_cache_hits + s1.feas_cache_misses, s1.solver_calls);
  const symbex::ExecutorStats s8 = stats_at(8);
  EXPECT_EQ(s1.solver_calls, s8.solver_calls)
      << "feasibility probes are per-fork and the fork tree is deterministic";
  // The witness cache is carried in each path's state, not in a worker, so
  // its hit/miss split must not depend on the thread count either.
  EXPECT_EQ(s1.feas_cache_hits, s8.feas_cache_hits);
  EXPECT_EQ(s1.feas_cache_misses, s8.feas_cache_misses);
  EXPECT_EQ(s1.solver_unknowns, s8.solver_unknowns);
  EXPECT_EQ(s1.completed_paths, s8.completed_paths);
  EXPECT_EQ(s1.pruned_branches, s8.pruned_branches);
}

// A scenario sweep through the parallel driver matches the sequential
// reference results.
TEST(ParallelScenarios, SweepMatchesSequentialReference) {
  const std::vector<std::string> ids = {"NAT4", "Br2", "LPM2"};
  const std::vector<ScenarioResult> swept = run_scenarios(ids, {}, 4);
  ASSERT_EQ(swept.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    perf::PcvRegistry reg;
    Scenario scenario = make_scenario(ids[i], reg);
    const ScenarioResult ref = run_scenario(scenario, reg);
    EXPECT_EQ(swept[i].id, ids[i]);
    EXPECT_EQ(swept[i].predicted_ic, ref.predicted_ic);
    EXPECT_EQ(swept[i].measured_ic, ref.measured_ic);
    EXPECT_EQ(swept[i].predicted_ma, ref.predicted_ma);
    EXPECT_EQ(swept[i].measured_ma, ref.measured_ma);
    EXPECT_EQ(swept[i].predicted_cycles, ref.predicted_cycles);
    EXPECT_EQ(swept[i].measured_cycles, ref.measured_cycles);
  }
}

}  // namespace
}  // namespace bolt::core
