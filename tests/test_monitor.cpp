// The contract monitor's own contract:
//  * every packet of a well-formed workload is attributed to a contract
//    input class, and compliant runs report zero violations (the paper's
//    essential property, checked online);
//  * an injected cost perturbation (measurement framework more expensive
//    than the one the contract was generated for) is reported as a
//    violation with class, packet index, and predicted vs measured values;
//  * reports are byte-identical at 1, 2, and 8 threads, and identical
//    between the compiled-expression VM and the tree-walk baseline;
//  * sharding is flow-affine.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/flow.h"
#include "net/workload.h"
#include "perf/contract_io.h"

namespace bolt::monitor {
namespace {

using perf::Metric;

/// Generates the contract for a named target (the generation-side half).
core::GenerationResult contract_for(const std::string& name,
                                    perf::PcvRegistry& reg) {
  core::NfTarget target;
  EXPECT_TRUE(core::make_named_target(name, reg, target));
  core::ContractGenerator gen(reg);
  return gen.generate(target.analysis());
}

std::vector<net::Packet> workload_for(const std::string& name,
                                      std::size_t count) {
  if (name == "bridge") {
    net::BridgeSpec spec;
    spec.stations = 300;
    spec.broadcast_fraction = 0.1;
    spec.packet_count = count;
    return net::bridge_traffic(spec);
  }
  net::ZipfSpec spec;
  spec.flow_pool = 512;
  spec.skew = 1.1;
  spec.packet_count = count;
  return net::zipf_traffic(spec);
}

class MonitorSoundness : public ::testing::TestWithParam<const char*> {};

TEST_P(MonitorSoundness, CompliantRunsHaveZeroViolations) {
  const std::string name = GetParam();
  perf::PcvRegistry reg;
  const auto result = contract_for(name, reg);
  const auto packets = workload_for(name, 4000);

  MonitorOptions opts;
  opts.partitions = 4;
  MonitorEngine engine(result.contract, reg, opts);
  const MonitorReport report =
      engine.run(packets, MonitorEngine::named_factory(name));

  EXPECT_EQ(report.packets, packets.size());
  EXPECT_EQ(report.unattributed, 0u)
      << "first unattributed: packet " << report.first_unattributed_packet;
  EXPECT_EQ(report.attributed, packets.size());
  EXPECT_EQ(report.violations, 0u) << report.str();

  // State/epoch fields are only meaningful for stateful targets; a
  // stateless chain must report them as explicitly untracked.
  const bool stateful = name != "fw+router";
  EXPECT_EQ(report.state_tracked, stateful);
  if (!stateful) {
    EXPECT_EQ(report.epoch_ns, 0u);
    EXPECT_EQ(report.state_high_water, 0u);
    EXPECT_EQ(report.state_residents, 0u);
  } else {
    EXPECT_GT(report.state_residents, 0u);
  }

  // Per-class packet counts add up, and observed classes have offenders
  // recorded (the compliance-headroom view).
  std::uint64_t across = 0;
  for (const ClassReport& c : report.classes) {
    across += c.packets;
    if (c.packets > 0) {
      EXPECT_FALSE(c.offenders.empty()) << c.input_class;
      for (const Offender& o : c.offenders) {
        EXPECT_LT(o.packet_index, packets.size());
        EXPECT_LE(static_cast<std::int64_t>(o.measured), o.predicted);
      }
    }
  }
  EXPECT_EQ(across, packets.size());
}

INSTANTIATE_TEST_SUITE_P(Targets, MonitorSoundness,
                         ::testing::Values("nat", "bridge", "fw+router"));

TEST(Monitor, ReportsAreByteIdenticalAcrossThreadCounts) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = workload_for("nat", 3000);

  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    MonitorOptions opts;
    opts.partitions = 8;
    opts.threads = threads;
    MonitorEngine engine(result.contract, reg, opts);
    const MonitorReport report =
        engine.run(packets, MonitorEngine::named_factory("nat"));
    const std::string json = report_to_json(report);
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "threads=" << threads;
    }
  }
  EXPECT_NE(baseline.find("\"violations\":0"), std::string::npos);
}

TEST(Monitor, ShardGroupingPolicyNeverChangesReportBytes) {
  // Grouping (like shards and threads) is execution-only as of the
  // partition/shard split: longest-queue-first may change which queue runs
  // a partition, never what the partition computes. Exercise it under
  // heavily skewed traffic — the case the policy exists for — across a
  // shard x thread grid, with per-packet attribution also compared.
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  net::ZipfSpec spec;
  spec.flow_pool = 48;  // few flows -> few hot partitions
  spec.skew = 2.0;
  spec.packet_count = 3000;
  const auto packets = net::zipf_traffic(spec);

  std::string baseline;
  std::vector<std::uint32_t> baseline_attr;
  for (const ShardGrouping grouping :
       {ShardGrouping::kRoundRobin, ShardGrouping::kLongestQueueFirst}) {
    for (const std::size_t shards : {std::size_t(1), std::size_t(3),
                                     std::size_t(8)}) {
      for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
        MonitorOptions opts;
        opts.partitions = 8;
        opts.shards = shards;
        opts.threads = threads;
        opts.grouping = grouping;
        MonitorEngine engine(result.contract, reg, opts);
        std::vector<std::uint32_t> attr;
        const MonitorReport report =
            engine.run(packets, MonitorEngine::named_factory("nat"), &attr);
        const std::string json = report_to_json(report);
        if (baseline.empty()) {
          baseline = json;
          baseline_attr = attr;
        } else {
          EXPECT_EQ(json, baseline)
              << "grouping=" << static_cast<int>(grouping)
              << " shards=" << shards << " threads=" << threads;
          EXPECT_EQ(attr, baseline_attr);
        }
      }
    }
  }
}

TEST(Monitor, BatchSizeAndPipelineModeNeverChangeReportBytes) {
  // Batch size and staged-vs-inline validation are execution-only knobs of
  // the batched pipeline: rows are validated independently and every
  // accumulator is order-independent, so where a batch boundary falls —
  // and which thread evaluates the batch — cannot leak into the report.
  // batch=1 degenerates to per-packet validation; batch=1024 exceeds the
  // whole per-partition packet count so everything validates in the final
  // flush; batch=3 puts boundaries in awkward mid-class places.
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = workload_for("nat", 3000);

  std::string baseline;
  std::vector<std::uint32_t> baseline_attr;
  for (const bool pipeline : {false, true}) {
    for (const std::size_t batch :
         {std::size_t(1), std::size_t(3), std::size_t(64),
          std::size_t(1024)}) {
      for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
        MonitorOptions opts;
        opts.partitions = 8;
        opts.batch = batch;
        opts.pipeline = pipeline;
        opts.threads = threads;
        MonitorEngine engine(result.contract, reg, opts);
        std::vector<std::uint32_t> attr;
        const MonitorReport report =
            engine.run(packets, MonitorEngine::named_factory("nat"), &attr);
        const std::string json = report_to_json(report);
        if (baseline.empty()) {
          baseline = json;
          baseline_attr = attr;
        } else {
          EXPECT_EQ(json, baseline) << "pipeline=" << pipeline
                                    << " batch=" << batch
                                    << " threads=" << threads;
          EXPECT_EQ(attr, baseline_attr);
        }
      }
    }
  }
}

TEST(Monitor, CompiledVmMatchesTreeWalkBaseline) {
  perf::PcvRegistry reg;
  const auto result = contract_for("bridge", reg);
  const auto packets = workload_for("bridge", 2000);

  MonitorOptions vm_opts;
  vm_opts.partitions = 4;
  MonitorOptions tw_opts = vm_opts;
  tw_opts.use_compiled_exprs = false;

  const MonitorReport vm_report =
      MonitorEngine(result.contract, reg, vm_opts)
          .run(packets, MonitorEngine::named_factory("bridge"));
  const MonitorReport tw_report =
      MonitorEngine(result.contract, reg, tw_opts)
          .run(packets, MonitorEngine::named_factory("bridge"));
  EXPECT_EQ(report_to_json(vm_report), report_to_json(tw_report));
}

TEST(Monitor, InjectedCostPerturbationIsReported) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = workload_for("nat", 2000);

  // The contract was generated for the standard framework; measure with an
  // inflated one (a "framework regression": rx path got 50% pricier).
  MonitorOptions opts;
  opts.partitions = 4;
  opts.framework.rx_instructions += opts.framework.rx_instructions / 2;
  opts.framework.rx_accesses += opts.framework.rx_accesses / 2;
  MonitorEngine engine(result.contract, reg, opts);
  const MonitorReport report =
      engine.run(packets, MonitorEngine::named_factory("nat"));

  EXPECT_EQ(report.unattributed, 0u);
  EXPECT_GT(report.violations, 0u);

  // Violations carry a reproducer: class, packet index, predicted vs
  // measured, with measured exceeding the bound.
  bool found = false;
  for (const ClassReport& c : report.classes) {
    for (const Offender& o : c.offenders) {
      if (static_cast<std::int64_t>(o.measured) <= o.predicted) continue;
      found = true;
      EXPECT_FALSE(c.input_class.empty());
      EXPECT_LT(o.packet_index, packets.size());
      EXPECT_GT(static_cast<std::int64_t>(o.measured), o.predicted);
    }
    // Histogram overflow bucket mirrors the violation count per metric.
    for (const auto& mr : c.metrics) {
      EXPECT_EQ(mr.histogram[kViolationBucket], mr.violations);
    }
  }
  EXPECT_TRUE(found) << report.str();

  // The JSON rendering carries the top-level violation count.
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"violations\":" + std::to_string(report.violations)),
            std::string::npos);
}

TEST(Monitor, HeadroomSketchesAreCoherent) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = workload_for("nat", 3000);

  MonitorOptions opts;
  opts.partitions = 4;
  MonitorEngine engine(result.contract, reg, opts);
  const MonitorReport report =
      engine.run(packets, MonitorEngine::named_factory("nat"));

  for (const ClassReport& c : report.classes) {
    for (const perf::Metric m : perf::kAllMetrics) {
      const MetricReport& mr = c.metrics[perf::metric_index(m)];
      const QuantileSummary& s = mr.headroom_pm;
      // Every attributed packet of the class feeds the sketch.
      EXPECT_EQ(s.count, c.packets) << c.input_class;
      // Quantiles are monotone and capped by the recorded max.
      EXPECT_LE(s.p50, s.p90) << c.input_class;
      EXPECT_LE(s.p90, s.p99) << c.input_class;
      EXPECT_LE(s.p99, s.p999) << c.input_class;
      EXPECT_LE(s.p999, s.max + s.max / 32 + 1) << c.input_class;
      // Compliant run: nothing past the bound (1000 per-mille).
      EXPECT_LE(s.max, 1000u) << c.input_class;
    }
    // No violations -> empty margin distribution.
    EXPECT_EQ(c.violation_margin_pm.count, 0u) << c.input_class;
  }
}

TEST(Monitor, ViolationMarginSketchTracksViolations) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = workload_for("nat", 2000);

  MonitorOptions opts;
  opts.partitions = 4;
  opts.framework.rx_instructions += opts.framework.rx_instructions / 2;
  opts.framework.rx_accesses += opts.framework.rx_accesses / 2;
  MonitorEngine engine(result.contract, reg, opts);
  const MonitorReport report =
      engine.run(packets, MonitorEngine::named_factory("nat"));
  ASSERT_GT(report.violations, 0u);

  std::uint64_t margins = 0;
  for (const ClassReport& c : report.classes) {
    std::uint64_t class_violations = 0;
    for (const auto& mr : c.metrics) class_violations += mr.violations;
    EXPECT_EQ(c.violation_margin_pm.count, class_violations)
        << c.input_class;
    if (class_violations > 0) {
      EXPECT_GT(c.violation_margin_pm.max, 0u) << c.input_class;
    }
    margins += c.violation_margin_pm.count;
  }
  EXPECT_EQ(margins, report.violations);
}

TEST(Monitor, ShardingIsFlowAffine) {
  net::ZipfSpec spec;
  spec.flow_pool = 64;
  spec.packet_count = 2000;
  const auto packets = net::zipf_traffic(spec);
  std::map<std::uint64_t, std::size_t> shard_of_flow;
  std::set<std::size_t> used;
  for (const net::Packet& p : packets) {
    const auto tuple = net::extract_five_tuple(p);
    ASSERT_TRUE(tuple.has_value());
    const std::size_t s = partition_of(p, 8);
    ASSERT_LT(s, 8u);
    used.insert(s);
    const auto [it, inserted] = shard_of_flow.emplace(tuple->key(), s);
    EXPECT_EQ(it->second, s);  // one flow never splits across shards
  }
  EXPECT_GT(used.size(), 4u);  // and flows actually spread out
}

}  // namespace
}  // namespace bolt::monitor
