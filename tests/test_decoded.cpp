// The decoded engine's contract: byte-identical observable results to the
// reference interpreter (the oracle), for every program either can run.
//
//  * DecodedProgram::decode fuses the dominant static idioms and never
//    fuses across a branch target;
//  * randomized IrBuilder programs (ALU soup, packet I/O, diamonds,
//    bounded loops, stateful calls, scratch memory) produce field-equal
//    RunResults, equal conservative cycle totals, and equal scratch state
//    under both engines, across many seeds;
//  * every registered NF target produces identical per-packet results and
//    class keys under both engines;
//  * monitor reports are byte-identical decoded-vs-reference across the
//    full execution-knob grid (shards x threads x grouping x batch x
//    pipeline).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/bolt.h"
#include "core/classkey.h"
#include "core/targets.h"
#include "hw/models.h"
#include "ir/builder.h"
#include "ir/decoded.h"
#include "ir/interp.h"
#include "monitor/monitor.h"
#include "monitor/report.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "support/random.h"

namespace bolt {
namespace {

using ir::DOp;
using ir::DecodedInterpreter;
using ir::DecodedProgram;
using ir::Interpreter;
using ir::IrBuilder;
using ir::Label;
using ir::Program;
using ir::Reg;
using ir::RunResult;

std::vector<std::uint8_t> bytes_of(const net::Packet& p) {
  return {p.bytes().begin(), p.bytes().end()};
}

std::vector<std::pair<perf::PcvId, std::uint64_t>> pcv_items(
    const perf::PcvBinding& b) {
  return {b.begin(), b.end()};
}

/// Field-by-field equality of everything a RunResult observes. The label
/// tables differ by object but intern in execution order, so raw ids are
/// directly comparable; names are compared too as a belt-and-braces check.
void expect_equal_results(const RunResult& dec, const RunResult& ref,
                          const std::string& ctx) {
  EXPECT_EQ(dec.verdict, ref.verdict) << ctx;
  EXPECT_EQ(dec.out_port, ref.out_port) << ctx;
  EXPECT_EQ(dec.instructions, ref.instructions) << ctx;
  EXPECT_EQ(dec.mem_accesses, ref.mem_accesses) << ctx;
  EXPECT_EQ(dec.stateless_instructions, ref.stateless_instructions) << ctx;
  EXPECT_EQ(dec.stateless_accesses, ref.stateless_accesses) << ctx;
  EXPECT_EQ(pcv_items(dec.pcvs), pcv_items(ref.pcvs)) << ctx;
  EXPECT_EQ(dec.calls, ref.calls) << ctx;
  EXPECT_EQ(dec.class_tags, ref.class_tags) << ctx;
  EXPECT_EQ(dec.loop_trips, ref.loop_trips) << ctx;
  EXPECT_EQ(dec.class_tag_names(), ref.class_tag_names()) << ctx;
  EXPECT_EQ(dec.class_label(), ref.class_label()) << ctx;
  EXPECT_EQ(dec.loop_trips_map(), ref.loop_trips_map()) << ctx;
}

// --- decode pass -------------------------------------------------------------

std::size_t count_dop(const DecodedProgram& dp, DOp op) {
  std::size_t n = 0;
  for (const auto& ins : dp.code) n += (ins.op == op) ? 1 : 0;
  return n;
}

TEST(Decode, FusesTheDominantStaticIdioms) {
  IrBuilder b("fuse");
  const Reg x = b.load_pkt_at(12, 2);       // const + load  -> kLoadPktI
  const Reg y = b.add_imm(x, 5);            // const + add   -> kAddI
  // const + load + const + and -> kLoadPktMaskI (emitted in that order;
  // nesting the calls would leave the order to argument evaluation).
  const Reg lv = b.load_pkt_at(14, 2);
  const Reg mk = b.imm(0x1fff);
  const Reg m = b.band(lv, mk);
  Label big = b.make_label();
  b.br_true(b.gtu(y, m), big);              // cmp + br      -> kGtUBr
  b.drop();
  b.bind(big);
  Label tiny = b.make_label();
  b.br_true(b.ltu(y, b.imm(100)), tiny);    // const+cmp+br  -> kLtUIBr
  b.forward(y);
  b.bind(tiny);
  b.forward_imm(7);                         // const + fwd   -> kForwardI
  const Program p = b.finish();

  const DecodedProgram dp = DecodedProgram::decode(p);
  EXPECT_EQ(count_dop(dp, DOp::kLoadPktI), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kAddI), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kLoadPktMaskI), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kGtUBr), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kLtUIBr), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kForwardI), 1u);
  // 1+1+3+1+2+1 members fused away; every decoded target is in range.
  EXPECT_EQ(dp.fused_away, 9u);
  EXPECT_EQ(dp.code.size(), p.code.size() - dp.fused_away);
  for (const auto& ins : dp.code) {
    EXPECT_LT(ins.t, dp.code.size());
    EXPECT_LT(ins.f, dp.code.size());
  }
}

TEST(Decode, BranchTargetBlocksFusion) {
  // The branch lands on the kAdd, so the const+add pair must NOT fuse (a
  // jump into the middle of a superinstruction would skip the const).
  IrBuilder b("mid");
  const Reg x = b.load_pkt_at(0, 1);
  Label mid = b.make_label();
  b.br_true(x, mid);
  const Reg c = b.imm(9);
  b.bind(mid);
  const Reg s = b.add(x, c);  // branch target: stays unfused
  b.forward(s);
  const Program p = b.finish();

  const DecodedProgram dp = DecodedProgram::decode(p);
  EXPECT_EQ(count_dop(dp, DOp::kAddI), 0u);
  EXPECT_EQ(count_dop(dp, DOp::kAdd), 1u);

  // And both engines agree on both paths through it.
  for (const std::uint8_t first : {0, 1}) {
    std::vector<std::uint8_t> bytes(60, 0);
    bytes[0] = first;
    net::Packet pd(bytes, 1000), pr(bytes, 1000);
    DecodedInterpreter dec(p, nullptr);
    Interpreter ref(p, nullptr);
    RunResult rd = dec.run(pd), rr = ref.run(pr);
    expect_equal_results(rd, rr, "first=" + std::to_string(first));
    EXPECT_EQ(rd.out_port, first ? first + 0u : 9u);
  }
}

TEST(Decode, MaskFusionRequiresDistinctLoadAndMaskRegisters) {
  // kLoadPktMaskI caches the loaded value across the mask const; when the
  // load writes the same register the mask const lives in, decode must
  // fall back (here: fuse const+load and const+and separately instead).
  Program p;
  p.name = "alias";
  p.num_regs = 2;
  auto ins = [](ir::Op op, ir::Reg dst, ir::Reg a, ir::Reg b,
                std::int64_t imm = 0, std::uint8_t width = 0) {
    ir::Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.imm = imm;
    i.width = width;
    return i;
  };
  // The mask const clobbers the load's destination register (r1), so the
  // masked result is 0xff & 0xff — a quad that cached the loaded value
  // would compute pkt[12..14) & 0xff instead.
  p.code.push_back(ins(ir::Op::kConst, 0, ir::kNoReg, ir::kNoReg, 12));
  p.code.push_back(ins(ir::Op::kLoadPkt, 1, 0, ir::kNoReg, 0, 2));
  p.code.push_back(ins(ir::Op::kConst, 1, ir::kNoReg, ir::kNoReg, 0xff));
  p.code.push_back(ins(ir::Op::kAnd, 0, 1, 1));
  p.code.push_back(ins(ir::Op::kForward, ir::kNoReg, 0, ir::kNoReg));
  p.validate();

  const DecodedProgram dp = DecodedProgram::decode(p);
  EXPECT_EQ(count_dop(dp, DOp::kLoadPktMaskI), 0u);
  EXPECT_EQ(count_dop(dp, DOp::kLoadPktI), 1u);
  EXPECT_EQ(count_dop(dp, DOp::kAndI), 1u);

  net::Packet pd = net::packet_for_tuple(net::tuple_for_index(3), 1000, 0);
  net::Packet pr = pd;
  DecodedInterpreter dec(p, nullptr);
  Interpreter ref(p, nullptr);
  const RunResult rd = dec.run(pd), rr = ref.run(pr);
  expect_equal_results(rd, rr, "alias");
  EXPECT_EQ(rd.out_port, 0xffu);  // the clobbered-register semantics
}

TEST(Decode, StepBudgetStillGuardsRunaways) {
  IrBuilder b("inf");
  Label loop = b.make_label();
  b.bind(loop);
  b.jmp(loop);
  const Program p = b.finish();
  ir::InterpreterOptions opts;
  opts.max_steps = 1000;
  DecodedInterpreter dec(p, nullptr, opts);
  net::Packet pkt = net::packet_for_tuple(net::tuple_for_index(1), 1000, 0);
  EXPECT_DEATH(dec.run(pkt), "step budget");
}

// --- randomized differential -------------------------------------------------

/// Deterministic stateful stub: cost, results, case label, and PCVs are
/// pure functions of (method, args), so two independent instances behave
/// identically under both engines.
class DiffEnv final : public ir::StatefulEnv {
 public:
  ir::CallOutcome call(std::int64_t method, std::uint64_t a0, std::uint64_t a1,
                       const net::Packet&, ir::CostMeter& meter) override {
    meter.metered_instructions(5 + method % 7);
    meter.mem_read(ir::kArenaBase + (a0 % 32) * 8, 8);
    if ((a0 ^ a1) & 1) meter.mem_write(ir::kArenaBase + 256, 8);
    ir::CallOutcome out;
    out.v0 = a0 * 3 + a1;
    out.v1 = static_cast<std::uint64_t>(method) ^ a1;
    static const char* const kCases[3] = {"hit", "miss", "full"};
    out.case_label = kCases[(a0 + a1) % 3];
    out.pcvs.set(static_cast<perf::PcvId>(method % 4), (a0 % 13) + 1);
    return out;
  }
};

/// A random but always-terminating program: ALU soup over a live-value
/// pool, packet loads/stores, forward-only diamonds, bounded counted
/// loops, scratch memory, stateful calls, and class tags — enough to hit
/// every fusion pattern and every unfused opcode.
Program random_program(support::Rng& rng, bool with_calls) {
  IrBuilder b("rand" + std::to_string(rng.below(1u << 30)));
  b.set_scratch_slots(8);
  std::vector<Reg> vals;
  vals.push_back(b.load_pkt_at(rng.below(16), 1));
  vals.push_back(b.load_pkt_at(16 + rng.below(16), 2));
  vals.push_back(b.imm(rng.below(1u << 20)));
  vals.push_back(b.pkt_len());
  auto pick = [&] { return vals[rng.below(vals.size())]; };

  const std::size_t ops = 12 + rng.below(28);
  int loops = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    switch (rng.below(18)) {
      case 0: vals.push_back(b.add(pick(), pick())); break;
      case 1: vals.push_back(b.sub(pick(), pick())); break;
      case 2: vals.push_back(b.mul(pick(), pick())); break;
      case 3: vals.push_back(b.band(pick(), pick())); break;
      case 4: vals.push_back(b.bxor(pick(), pick())); break;
      case 5: vals.push_back(b.bnot(pick())); break;
      case 6: vals.push_back(b.add_imm(pick(), rng.below(1000))); break;
      case 7: vals.push_back(b.and_imm(pick(), (1u << (1 + rng.below(16))) - 1)); break;
      case 8: vals.push_back(b.shr_imm(pick(), 1 + rng.below(7))); break;
      case 9: vals.push_back(b.eq_imm(pick(), rng.below(256))); break;
      case 10: vals.push_back(b.load_pkt_at(rng.below(40), 1 + rng.below(2))); break;
      case 11: b.store_pkt_at(40 + rng.below(16), pick(), 1); break;
      case 12: vals.push_back(b.load_mem(b.imm(rng.below(8)))); break;
      case 13: b.store_mem(b.imm(rng.below(8)), pick()); break;
      case 14: {  // forward-only diamond (exercises cmp+br fusions)
        Label skip = b.make_label();
        const Reg cond = rng.below(2) ? b.eq_imm(pick(), rng.below(64))
                                      : b.ltu(pick(), pick());
        rng.below(2) ? b.br_true(cond, skip) : b.br_false(cond, skip);
        if (rng.below(2)) b.class_tag("arm" + std::to_string(i));
        vals.push_back(b.add_imm(pick(), 1 + rng.below(9)));
        b.bind(skip);
        break;
      }
      case 15: {  // bounded counted loop with a loop_head annotation
        if (loops++ >= 2) break;
        const auto slot = b.local();
        b.store_local(slot, b.imm(0));
        const Reg limit = b.and_imm(pick(), 7);
        Label head = b.make_label(), done = b.make_label();
        b.bind(head);
        b.loop_head("L" + std::to_string(i));
        const Reg it = b.load_local(slot);
        b.br_false(b.ltu(it, limit), done);
        vals.push_back(b.bxor(pick(), it));
        b.store_local(slot, b.add_imm(it, 1));
        b.jmp(head);
        b.bind(done);
        break;
      }
      case 16:
        if (with_calls) {
          auto [v0, v1] = b.call(1 + rng.below(4), pick(), pick());
          vals.push_back(v0);
          vals.push_back(v1);
        }
        break;
      default: b.class_tag("t" + std::to_string(rng.below(4))); break;
    }
  }
  if (rng.below(2)) b.class_tag("exit");
  switch (rng.below(3)) {
    case 0: b.forward(pick()); break;
    case 1: b.forward_imm(rng.below(16)); break;
    default: b.drop(); break;
  }
  return b.finish();
}

TEST(DecodedDifferential, RandomProgramsMatchTheReferenceOracle) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    support::Rng rng(0xb01d + seed);
    const bool with_calls = seed % 2 == 0;
    const Program p = random_program(rng, with_calls);

    ir::InterpreterOptions opts;
    opts.rx_instructions = 24;
    opts.rx_accesses = 2;
    opts.tx_instructions = 33;
    opts.tx_accesses = 3;
    opts.drop_instructions = 10;
    opts.drop_accesses = 1;

    DiffEnv env_d, env_r;
    hw::ConservativeModel sink_d, sink_r;
    ir::InterpreterOptions opts_d = opts, opts_r = opts;
    opts_d.sink = &sink_d;
    opts_r.sink = &sink_r;
    DecodedInterpreter dec(p, with_calls ? &env_d : nullptr, opts_d);
    Interpreter ref(p, with_calls ? &env_r : nullptr, opts_r);

    for (int i = 0; i < 40; ++i) {
      net::Packet pd = net::packet_for_tuple(
          net::tuple_for_index(rng.below(500)), 1'000'000 + i, rng.below(4));
      net::Packet pr = pd;
      sink_d.begin_packet();
      sink_r.begin_packet();
      RunResult rd = dec.run(pd), rr = ref.run(pr);
      const std::string ctx =
          p.name + " seed=" + std::to_string(seed) + " pkt=" + std::to_string(i);
      expect_equal_results(rd, rr, ctx);
      EXPECT_EQ(bytes_of(pd), bytes_of(pr)) << ctx;  // identical rewrites
      EXPECT_EQ(sink_d.packet_cycles(), sink_r.packet_cycles()) << ctx;
    }
    EXPECT_EQ(dec.scratch(), ref.scratch()) << p.name;
    EXPECT_EQ(sink_d.total_cycles(), sink_r.total_cycles()) << p.name;
  }
}

// --- registered NF targets ---------------------------------------------------

std::vector<net::Packet> target_workload(const std::string& name,
                                         std::size_t count) {
  if (name == "bridge") {
    net::BridgeSpec spec;
    spec.stations = 200;
    spec.broadcast_fraction = 0.15;
    spec.packet_count = count;
    return net::bridge_traffic(spec);
  }
  net::ZipfSpec spec;
  spec.flow_pool = 256;
  spec.skew = 1.1;
  spec.packet_count = count;
  return net::zipf_traffic(spec);
}

TEST(DecodedDifferential, EveryRegisteredTargetMatchesTheReference) {
  for (const std::string& name : core::named_targets()) {
    // Two independent instances of the same target (stateful NFs mutate
    // their state as they run, so the engines must not share one).
    perf::PcvRegistry reg_d, reg_r;
    core::NfTarget tgt_d, tgt_r;
    ASSERT_TRUE(core::make_named_target(name, reg_d, tgt_d));
    ASSERT_TRUE(core::make_named_target(name, reg_r, tgt_r));

    hw::ConservativeModel sink_d, sink_r;
    auto run_d = tgt_d.make_runner(nf::framework_full(), &sink_d,
                                   ir::EngineKind::kDecoded);
    auto run_r = tgt_r.make_runner(nf::framework_full(), &sink_r,
                                   ir::EngineKind::kReference);
    EXPECT_TRUE(run_d->uses_decoded_engine()) << name;
    EXPECT_FALSE(run_r->uses_decoded_engine()) << name;

    const auto packets = target_workload(name, 1500);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      net::Packet pd = packets[i], pr = packets[i];
      const RunResult rd = run_d->process(pd);
      const RunResult rr = run_r->process(pr);
      const std::string ctx = name + " pkt=" + std::to_string(i);
      expect_equal_results(rd, rr, ctx);
      EXPECT_EQ(bytes_of(pd), bytes_of(pr)) << ctx;
      EXPECT_EQ(core::class_key_of(rd, &tgt_d.methods()),
                core::class_key_of(rr, &tgt_r.methods()))
          << ctx;
      if (::testing::Test::HasFailure()) return;  // one dump is enough
    }
    EXPECT_EQ(sink_d.total_cycles(), sink_r.total_cycles()) << name;
  }
}

// --- monitor report byte-identity over the knob grid -------------------------

TEST(DecodedDifferential, MonitorReportsAreByteIdenticalAcrossTheKnobGrid) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  ASSERT_TRUE(core::make_named_target("nat", reg, target));
  core::ContractGenerator gen(reg);
  const core::GenerationResult result = gen.generate(target.analysis());

  net::ZipfSpec spec;
  spec.flow_pool = 256;
  spec.skew = 1.1;
  spec.packet_count = 2000;
  const auto packets = net::zipf_traffic(spec);

  // The oracle: reference engine, plain single-threaded run.
  monitor::MonitorOptions ref_opts;
  ref_opts.partitions = 8;
  ref_opts.threads = 1;
  ref_opts.engine = ir::EngineKind::kReference;
  std::vector<std::uint32_t> ref_attr;
  const std::string ref_json = monitor::report_to_json(
      monitor::MonitorEngine(result.contract, reg, ref_opts)
          .run(packets, monitor::MonitorEngine::named_factory("nat"),
               &ref_attr));

  for (const std::size_t shards : {std::size_t(0), std::size_t(2)}) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(4)}) {
      for (const auto grouping : {monitor::ShardGrouping::kRoundRobin,
                                  monitor::ShardGrouping::kLongestQueueFirst}) {
        for (const std::size_t batch : {std::size_t(1), std::size_t(64)}) {
          for (const bool pipeline : {false, true}) {
            monitor::MonitorOptions opts;
            opts.partitions = 8;
            opts.shards = shards;
            opts.threads = threads;
            opts.grouping = grouping;
            opts.batch = batch;
            opts.pipeline = pipeline;
            opts.engine = ir::EngineKind::kDecoded;
            std::vector<std::uint32_t> attr;
            const std::string json = monitor::report_to_json(
                monitor::MonitorEngine(result.contract, reg, opts)
                    .run(packets,
                         monitor::MonitorEngine::named_factory("nat"), &attr));
            EXPECT_EQ(json, ref_json)
                << "shards=" << shards << " threads=" << threads
                << " grouping=" << static_cast<int>(grouping)
                << " batch=" << batch << " pipeline=" << pipeline;
            EXPECT_EQ(attr, ref_attr);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace bolt
