// The telemetry layer's own contract (src/obs/):
//  * telemetry is execution-only — report bytes are byte-identical with
//    the hot-path counters on or off, and at every --delta-every setting;
//  * the delta stream is byte-deterministic across the execution knobs
//    (shards x threads x grouping x batch x pipeline), because windows are
//    keyed by packet timestamp and every accumulator merges
//    order-independently;
//  * merging all of a run's window sketches reproduces the final report's
//    sketch state exactly — the stream is a lossless decomposition;
//  * the drift detector alerts on the synthetic headroom-eroding workload
//    (net::drift_traffic) strictly before any violation, and stays silent
//    on stationary zipf/longrun traffic.
#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "obs/delta.h"
#include "obs/drift.h"
#include "obs/telemetry.h"
#include "perf/quantile_sketch.h"

namespace bolt::obs {
namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

// ---------------------------------------------------------------------------
// Drift detector unit tests (pure, no monitor involved).

TEST(DriftDetector, RisingSeriesAlertsOnceBeforeTheBound) {
  DriftDetector det;
  std::vector<DriftAlert> alerts;
  // p99 ramps 800 -> 980 in 20 pm steps: clearly trending, never crossing.
  for (std::uint64_t w = 0; w < 10; ++w) {
    DriftAlert alert;
    if (det.observe("c", Metric::kInstructions, w, 800 + 20 * w, &alert)) {
      alerts.push_back(alert);
    }
  }
  ASSERT_EQ(alerts.size(), 1u);  // hysteresis: sustained drift, one alert
  const DriftAlert& a = alerts[0];
  EXPECT_EQ(a.window, 3u);  // first window with min_points (4) points
  EXPECT_EQ(a.input_class, "c");
  EXPECT_EQ(a.metric, Metric::kInstructions);
  EXPECT_EQ(a.p99_pm, 860u);
  EXPECT_EQ(a.slope_mpm, 20'000);  // exact: 20 pm/window
  EXPECT_EQ(a.eta_windows, 7u);    // ceil((1000-860)/20)
}

TEST(DriftDetector, FlatAndFallingSeriesStaySilent) {
  DriftDetector det;
  for (std::uint64_t w = 0; w < 20; ++w) {
    EXPECT_FALSE(det.observe("flat", Metric::kInstructions, w, 700, nullptr));
    EXPECT_FALSE(det.observe("down", Metric::kInstructions, w,
                             900 - 10 * w, nullptr));
    // Jitter around a stationary level: median pairwise slope is ~0.
    EXPECT_FALSE(det.observe("noisy", Metric::kInstructions, w,
                             600 + (w % 2) * 5, nullptr));
  }
}

TEST(DriftDetector, SingleOutlierDoesNotAlert) {
  // Theil-Sen: one spiked window in a flat series cannot drag the median
  // pairwise slope positive.
  DriftDetector det;
  for (std::uint64_t w = 0; w < 12; ++w) {
    const std::uint64_t p99 = (w == 5) ? 950 : 500;
    EXPECT_FALSE(det.observe("c", Metric::kCycles, w, p99, nullptr));
  }
}

TEST(DriftDetector, SeriesAtOrPastTheBoundDoesNotAlert) {
  // Drift alerts are an *early* warning; at/past the bound the violation
  // machinery owns the signal.
  DriftDetector det;
  bool alerted = false;
  for (std::uint64_t w = 0; w < 8; ++w) {
    alerted |= det.observe("c", Metric::kInstructions, w, 1000 + 20 * w,
                           nullptr);
  }
  EXPECT_FALSE(alerted);
}

TEST(DriftDetector, AdaptiveBaselineLearnsSeasonalRamps) {
  // A sawtooth whose ramp repeats every period: the per-series slope
  // history learns the recurring ramp slope, so after warmup the learned
  // band absorbs it. The fixed global threshold pages on every single
  // period — the operator noise the adaptive baseline exists to remove.
  const auto count_alerts = [](bool adaptive) {
    DriftOptions o;
    o.adaptive = adaptive;
    DriftDetector det(o);
    std::size_t alerts = 0;
    std::uint64_t w = 0;
    for (int period = 0; period < 6; ++period) {
      for (std::uint64_t s = 0; s < 8; ++s) {
        if (det.observe("c", Metric::kInstructions, w++, 700 + 20 * s,
                        nullptr)) {
          ++alerts;
        }
      }
    }
    return alerts;
  };
  EXPECT_EQ(count_alerts(false), 6u);  // one page per period, forever
  EXPECT_EQ(count_alerts(true), 1u);   // warmup only; then learned silence
}

TEST(DriftDetector, AdaptiveWarmupFloorStillCatchesNovelErosion) {
  // A series with a long flat habit (slope history full of ~zero slopes)
  // must still page when a genuinely novel erosion starts: the learned
  // band sits near zero, so the new ramp clears it immediately.
  DriftDetector det;  // defaults: adaptive on
  std::uint64_t w = 0;
  for (; w < 12; ++w) {
    EXPECT_FALSE(det.observe("c", Metric::kInstructions, w,
                             500 + (w % 2) * 2, nullptr));
  }
  std::size_t alerts = 0;
  for (int i = 0; i < 8; ++i) {
    if (det.observe("c", Metric::kInstructions, w++, 700 + 25 * i, nullptr)) {
      ++alerts;
    }
  }
  EXPECT_EQ(alerts, 1u);
}

TEST(DriftDetector, ReArmsAfterTheTrendBreaks) {
  DriftDetector det;
  std::size_t alerts = 0;
  std::uint64_t w = 0;
  const auto feed = [&](std::uint64_t p99) {
    if (det.observe("c", Metric::kInstructions, w++, p99, nullptr)) ++alerts;
  };
  for (std::uint64_t v = 800; v <= 860; v += 20) feed(v);  // ramp: 1 alert
  EXPECT_EQ(alerts, 1u);
  for (int i = 0; i < 8; ++i) feed(860);  // plateau: trend breaks, re-arms
  EXPECT_EQ(alerts, 1u);
  for (std::uint64_t v = 880; v <= 940; v += 20) feed(v);  // second ramp
  EXPECT_EQ(alerts, 2u);
}

// ---------------------------------------------------------------------------
// Delta stream schema lockdown.

TEST(DeltaJson, SchemaIsExactlyAsDocumented) {
  DeltaWindow w;
  w.window = 2;
  w.window_ns = 1000;
  w.packets = 3;
  w.violations = 2;
  DeltaClass c;
  c.input_class = "c";
  c.packets = 3;
  c.metrics[metric_index(Metric::kInstructions)].violations = 2;
  w.classes.push_back(c);
  DriftAlert a;
  a.window = 2;
  a.input_class = "c";
  a.metric = Metric::kInstructions;
  a.p99_pm = 990;
  a.slope_mpm = 1500;
  a.eta_windows = 7;
  w.alerts.push_back(a);
  const std::string empty_summary =
      "{\"count\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"p999\":0,\"max\":0}";
  EXPECT_EQ(delta_window_to_json(w),
            "{\"version\":1,\"window\":2,\"window_start_ns\":2000,"
            "\"window_ns\":1000,\"packets\":3,\"violations\":2,"
            "\"classes\":[{\"input_class\":\"c\",\"packets\":3,\"metrics\":{"
            "\"instructions\":{\"violations\":2,\"headroom_pm\":" +
                empty_summary +
                "},\"memory accesses\":{\"violations\":0,\"headroom_pm\":" +
                empty_summary +
                "},\"cycles\":{\"violations\":0,\"headroom_pm\":" +
                empty_summary +
                "}}}],\"alerts\":[{\"input_class\":\"c\","
                "\"metric\":\"instructions\",\"p99_pm\":990,"
                "\"slope_mpm\":1500,\"eta_windows\":7}]}");
}

// ---------------------------------------------------------------------------
// Telemetry exposition.

TEST(Telemetry, JsonAndPrometheusExposition) {
  MonitorTelemetry t;
  t.packets_executed = 5;
  t.batches_emitted = 2;
  t.batch_rows = 5;
  t.batch_fill.add(2);
  t.batch_fill.add(3);
  t.ring_stalls = 1;
  const std::string json = telemetry_to_json(t, "nat");
  EXPECT_NE(json.find("\"nf\":\"nat\""), std::string::npos);
  EXPECT_NE(json.find("\"packets_executed\":5"), std::string::npos);
  EXPECT_NE(json.find("\"ring_stalls\":1"), std::string::npos);
  EXPECT_NE(json.find("\"batch_fill\":{\"count\":2"), std::string::npos);
  const std::string prom = telemetry_to_prometheus(t, "nat");
  EXPECT_NE(prom.find("# TYPE bolt_monitor_packets_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bolt_monitor_packets_total{nf=\"nat\"} 5"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bolt_monitor_batch_fill summary"),
            std::string::npos);
  EXPECT_NE(prom.find("bolt_monitor_batch_fill_count{nf=\"nat\"} 2"),
            std::string::npos);
}

TEST(Telemetry, PrometheusExpositionMatchesGoldenByteForByte) {
  // Full-exposition golden: every series must carry # HELP and # TYPE,
  // counters must end in _total, and the batch_fill summary must expose
  // quantiles + _sum/_count. The input is hand-built (telemetry from a
  // live run is execution-shaped and not reproducible); regenerate
  // tests/data/telemetry.prom from this exact struct after an intentional
  // exposition change.
  MonitorTelemetry t;
  t.packets_executed = 100;
  t.attr_memo_hits = 42;
  t.batches_emitted = 4;
  t.batch_rows = 100;
  t.batch_fill.add(10);
  t.batch_fill.add(20);
  t.batch_fill.add(30);
  t.batch_fill.add(40);
  t.ring_pushes = 4;
  t.ring_stalls = 1;
  t.ring_occupancy_high_water = 3;
  t.recycle_hits = 3;
  t.recycle_misses = 1;
  t.vm_batch_evals = 12;
  t.rows_validated = 100;
  t.epoch_sweeps = 2;
  t.state_high_water = 17;
  t.delta_windows = 5;
  t.drift_alerts = 1;
  std::ifstream in(std::string(BOLT_TEST_DATA_DIR) + "/telemetry.prom",
                   std::ios::binary);
  std::ostringstream golden;
  golden << in.rdbuf();
  ASSERT_FALSE(golden.str().empty()) << "missing tests/data/telemetry.prom";
  EXPECT_EQ(telemetry_to_prometheus(t, "nat"), golden.str());
}

TEST(Telemetry, MergeSumsCountersAndKeepsHighWaters) {
  MonitorTelemetry a, b;
  a.packets_executed = 3;
  a.ring_occupancy_high_water = 7;
  a.state_high_water = 2;
  b.packets_executed = 4;
  b.ring_occupancy_high_water = 5;
  b.state_high_water = 9;
  a.merge(b);
  EXPECT_EQ(a.packets_executed, 7u);
  EXPECT_EQ(a.ring_occupancy_high_water, 7u);
  EXPECT_EQ(a.state_high_water, 9u);
}

// ---------------------------------------------------------------------------
// End-to-end: monitor + delta + drift over the synthetic workloads.

struct RouterFixture {
  perf::PcvRegistry reg;
  core::GenerationResult gen;
};

RouterFixture& router() {
  static RouterFixture* f = [] {
    auto* r = new RouterFixture;
    core::NfTarget target;
    EXPECT_TRUE(core::make_named_target("router", r->reg, target));
    core::ContractGenerator g(r->reg);
    r->gen = g.generate(target.analysis());
    return r;
  }();
  return *f;
}

const std::vector<net::Packet>& drift_packets() {
  static auto* p = new std::vector<net::Packet>([] {
    net::DriftSpec spec;
    spec.packets_per_window = 200;  // 11 windows x 200 = 2200 packets
    return net::drift_traffic(spec);
  }());
  return *p;
}

struct RunOutput {
  monitor::MonitorReport report;
  std::string report_json;
  std::string delta_jsonl;
  RunObservations observations;
};

RunOutput run_drift(monitor::MonitorOptions opts) {
  RouterFixture& f = router();
  monitor::MonitorEngine engine(f.gen.contract, f.reg, opts);
  RunOutput out;
  out.report = engine.run(drift_packets(),
                          monitor::MonitorEngine::named_factory("router"),
                          nullptr, &out.observations);
  out.report_json = monitor::report_to_json(out.report);
  for (const DeltaWindow& w : out.observations.deltas) {
    out.delta_jsonl += delta_window_to_json(w);
    out.delta_jsonl += '\n';
  }
  return out;
}

TEST(DeltaDeterminism, GridOfExecutionKnobsIsByteIdentical) {
  monitor::MonitorOptions base;
  base.threads = 1;
  base.pipeline = false;
  base.shards = 1;
  base.delta_every = 1;
  const RunOutput baseline = run_drift(base);
  ASSERT_GE(baseline.observations.deltas.size(), 10u);
  for (const std::size_t shards : {2, 5}) {
    for (const std::size_t batch : {1, 7, 64}) {
      for (const bool pipeline : {false, true}) {
        monitor::MonitorOptions o;
        o.threads = 3;
        o.shards = shards;
        o.batch = batch;
        o.pipeline = pipeline;
        o.delta_every = 1;
        // Telemetry and grouping ride along as extra knobs under test.
        o.telemetry = pipeline;
        o.grouping = pipeline ? monitor::ShardGrouping::kLongestQueueFirst
                              : monitor::ShardGrouping::kRoundRobin;
        const RunOutput got = run_drift(o);
        EXPECT_EQ(baseline.report_json, got.report_json)
            << "shards=" << shards << " batch=" << batch
            << " pipeline=" << pipeline;
        EXPECT_EQ(baseline.delta_jsonl, got.delta_jsonl)
            << "shards=" << shards << " batch=" << batch
            << " pipeline=" << pipeline;
      }
    }
  }
}

TEST(DeltaDeterminism, ReportInvariantAcrossDeltaAndTelemetryKnobs) {
  monitor::MonitorOptions off;
  const std::string baseline = run_drift(off).report_json;
  for (const std::size_t every : {0, 1, 4}) {
    for (const bool telemetry : {false, true}) {
      monitor::MonitorOptions o;
      o.delta_every = every;
      o.telemetry = telemetry;
      EXPECT_EQ(baseline, run_drift(o).report_json)
          << "delta_every=" << every << " telemetry=" << telemetry;
    }
  }
}

/// Per-class merge of every delta window's sketches and counters.
struct MergedDeltas {
  std::map<std::string, std::array<perf::QuantileSketch, 3>> sketches;
  std::map<std::string, std::array<std::uint64_t, 3>> violations;
  std::map<std::string, std::uint64_t> packets;
};

MergedDeltas merge_deltas(const std::vector<DeltaWindow>& deltas) {
  MergedDeltas out;
  for (const DeltaWindow& w : deltas) {
    for (const DeltaClass& c : w.classes) {
      out.packets[c.input_class] += c.packets;
      for (const Metric m : kAllMetrics) {
        const int mi = metric_index(m);
        out.sketches[c.input_class][mi].merge(c.metrics[mi].headroom_pm);
        out.violations[c.input_class][mi] += c.metrics[mi].violations;
      }
    }
  }
  return out;
}

TEST(DeltaDeterminism, MergingWindowSketchesReproducesFinalReportState) {
  monitor::MonitorOptions fine;
  fine.delta_every = 1;
  const RunOutput fine_run = run_drift(fine);
  monitor::MonitorOptions coarse;
  coarse.delta_every = 4;
  const RunOutput coarse_run = run_drift(coarse);
  ASSERT_GT(fine_run.observations.deltas.size(),
            coarse_run.observations.deltas.size());

  const MergedDeltas a = merge_deltas(fine_run.observations.deltas);
  const MergedDeltas b = merge_deltas(coarse_run.observations.deltas);
  // Window width is execution-irrelevant to the totals: both merges are
  // the same multiset of values.
  ASSERT_EQ(a.packets, b.packets);
  ASSERT_EQ(a.violations, b.violations);
  for (const auto& [cls, sketches] : a.sketches) {
    const auto it = b.sketches.find(cls);
    ASSERT_NE(it, b.sketches.end());
    for (const Metric m : kAllMetrics) {
      const int mi = metric_index(m);
      EXPECT_EQ(sketches[mi], it->second[mi]) << cls << "/" << mi;
      EXPECT_EQ(sketches[mi].serialize(), it->second[mi].serialize());
    }
  }
  // And they reproduce the report's end-of-run sketch state exactly.
  for (const monitor::ClassReport& cr : fine_run.report.classes) {
    if (cr.packets == 0) {
      EXPECT_EQ(a.packets.count(cr.input_class), 0u);
      continue;
    }
    const auto pk = a.packets.find(cr.input_class);
    ASSERT_NE(pk, a.packets.end()) << cr.input_class;
    EXPECT_EQ(pk->second, cr.packets);
    const auto sk = a.sketches.find(cr.input_class);
    ASSERT_NE(sk, a.sketches.end());
    for (const Metric m : kAllMetrics) {
      const int mi = metric_index(m);
      const perf::QuantileSummary got = perf::summarize(sk->second[mi]);
      const perf::QuantileSummary& want = cr.metrics[mi].headroom_pm;
      EXPECT_EQ(got.count, want.count) << cr.input_class << "/" << mi;
      EXPECT_EQ(got.p50, want.p50) << cr.input_class << "/" << mi;
      EXPECT_EQ(got.p90, want.p90) << cr.input_class << "/" << mi;
      EXPECT_EQ(got.p99, want.p99) << cr.input_class << "/" << mi;
      EXPECT_EQ(got.p999, want.p999) << cr.input_class << "/" << mi;
      EXPECT_EQ(got.max, want.max) << cr.input_class << "/" << mi;
      EXPECT_EQ(a.violations.at(cr.input_class)[mi],
                cr.metrics[mi].violations);
    }
  }
}

TEST(Telemetry, CountersAreConsistentWithTheReport) {
  monitor::MonitorOptions o;
  o.telemetry = true;
  o.delta_every = 1;
  o.threads = 1;
  o.pipeline = false;
  const RunOutput run = run_drift(o);
  const MonitorTelemetry& t = run.observations.telemetry;
  EXPECT_EQ(t.packets_executed, drift_packets().size());
  EXPECT_EQ(t.rows_validated, run.report.attributed);
  EXPECT_EQ(t.batch_rows, run.report.attributed);
  EXPECT_EQ(t.batch_fill.count(), t.batches_emitted);
  EXPECT_GT(t.vm_batch_evals, 0u);
  EXPECT_EQ(t.delta_windows, run.observations.deltas.size());
  EXPECT_EQ(t.drift_alerts, run.observations.alerts.size());
  std::uint64_t window_packets = 0;
  for (const DeltaWindow& w : run.observations.deltas) {
    window_packets += w.packets;
  }
  EXPECT_EQ(window_packets, run.report.attributed);
}

TEST(DriftWorkload, RampAlertsStrictlyBeforeAnyViolation) {
  monitor::MonitorOptions o;
  o.delta_every = 1;
  const RunOutput run = run_drift(o);
  // The synthesised erosion stays inside the bound the whole way...
  EXPECT_EQ(run.report.violations, 0u);
  EXPECT_EQ(run.report.unattributed, 0u);
  // ...yet the detector pages before the crossing would happen.
  ASSERT_FALSE(run.observations.alerts.empty());
  for (const DriftAlert& a : run.observations.alerts) {
    EXPECT_NE(a.input_class.find("ip_options"), std::string::npos)
        << a.input_class;
    EXPECT_LT(a.p99_pm, 1000u);
    EXPECT_GT(a.slope_mpm, 0);
    EXPECT_LE(a.eta_windows, monitor::MonitorOptions{}.drift.horizon_windows);
    // Each alert is embedded in the window where it was raised.
    bool embedded = false;
    for (const DeltaWindow& w : run.observations.deltas) {
      if (w.window != a.window) continue;
      for (const DriftAlert& wa : w.alerts) {
        embedded |= wa.input_class == a.input_class && wa.metric == a.metric;
      }
    }
    EXPECT_TRUE(embedded) << a.input_class;
  }
}

TEST(DriftWorkload, StationaryTrafficStaysSilent) {
  // Zipf through the NAT, with a millisecond epoch so the short trace still
  // spans ~20 delta windows (same shape CI's longrun smoke checks at scale).
  perf::PcvRegistry reg;
  core::NfTarget target;
  ASSERT_TRUE(core::make_named_target("nat", reg, target));
  core::ContractGenerator g(reg);
  const core::GenerationResult gen = g.generate(target.analysis());
  net::ZipfSpec spec;
  spec.flow_pool = 512;
  spec.skew = 1.1;
  spec.packet_count = 20'000;
  const std::vector<net::Packet> packets = net::zipf_traffic(spec);
  monitor::MonitorOptions o;
  o.epoch_ns = 10'000'000;  // 10 ms
  o.delta_every = 1;
  monitor::MonitorEngine engine(gen.contract, reg, o);
  RunObservations observations;
  const monitor::MonitorReport report =
      engine.run(packets, monitor::MonitorEngine::named_factory("nat"),
                 nullptr, &observations);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_GE(observations.deltas.size(), 15u);
  EXPECT_TRUE(observations.alerts.empty());
  for (const DeltaWindow& w : observations.deltas) {
    EXPECT_TRUE(w.alerts.empty());
  }
}

}  // namespace
}  // namespace bolt::obs
