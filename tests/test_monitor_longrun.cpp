// Long-running operator monitoring — the week-long-run guarantees:
//
//  * Determinism: a simulated multi-day heavy-tailed run produces
//    byte-identical reports at ANY shard x thread combination (both are
//    pure execution knobs; flow-affine state partitions are the semantic
//    unit), including every sketch quantile and state counter.
//  * Bounded state: per-partition flow-table occupancy plateaus — the
//    high-water mark of the full run equals the high-water mark of its
//    first half, and sits far under table capacity, even though the trace
//    carries vastly more distinct flows than the table could hold.
//  * Mass expiry: every traffic burst opens onto fully stale state (the
//    paper's §5.3 pathological scenario). With the epoch clock on, the
//    idle sweeps reclaim entries off-path; with it off, the NF's own
//    expiry absorbs the burst — either way the run stays compliant and
//    deterministic.
//  * Stored-contract mode: the same long run validated against a
//    round-tripped (serialised + reloaded) contract artifact yields the
//    byte-identical report — the operator workflow end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "perf/contract_io.h"

namespace bolt::monitor {
namespace {

core::GenerationResult contract_for(const std::string& name,
                                    perf::PcvRegistry& reg) {
  core::NfTarget target;
  EXPECT_TRUE(core::make_named_target(name, reg, target));
  core::ContractGenerator gen(reg);
  return gen.generate(target.analysis());
}

/// A compressed simulated week: hourly bursts, rotating working set, so
/// distinct flows (~24k) far exceed the NAT table capacity (4096) while
/// per-burst active flows stay small.
std::vector<net::Packet> week_of_traffic(std::size_t packet_count) {
  net::LongRunSpec spec;
  spec.seed = 3;
  spec.flow_pool = 256;
  spec.skew = 1.1;
  spec.packet_count = packet_count;
  spec.bursts = 96;           // one every ~1h45 of simulated time
  spec.rotation_bursts = 1;   // a fresh working set every burst
  return net::long_run_traffic(spec);
}

MonitorReport run_monitor(const perf::Contract& contract,
                          const perf::PcvRegistry& reg,
                          const std::vector<net::Packet>& packets,
                          std::size_t shards, std::size_t threads,
                          std::uint64_t epoch_ns) {
  MonitorOptions opts;
  opts.partitions = 4;
  opts.shards = shards;
  opts.threads = threads;
  opts.epoch_ns = epoch_ns;
  MonitorEngine engine(contract, reg, opts);
  return engine.run(packets, MonitorEngine::named_factory("nat"));
}

TEST(MonitorLongRun, ByteIdenticalAtAnyShardAndThreadCount) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = week_of_traffic(12000);

  std::string baseline;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      const MonitorReport report = run_monitor(
          result.contract, reg, packets, shards, threads, 1'000'000'000);
      const std::string json = report_to_json(report);
      if (baseline.empty()) {
        baseline = json;
        EXPECT_EQ(report.violations, 0u) << report.str();
        EXPECT_EQ(report.unattributed, 0u) << report.str();
      } else {
        EXPECT_EQ(json, baseline)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
  // The quantile sketches made it into the report.
  EXPECT_NE(baseline.find("\"headroom_pm\""), std::string::npos);
  EXPECT_NE(baseline.find("\"p999\""), std::string::npos);
}

TEST(MonitorLongRun, StateStaysBoundedAndPlateaus) {
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto full = week_of_traffic(12000);
  const std::vector<net::Packet> half(full.begin(),
                                      full.begin() + full.size() / 2);

  const MonitorReport full_report =
      run_monitor(result.contract, reg, full, 0, 0, 1'000'000'000);
  const MonitorReport half_report =
      run_monitor(result.contract, reg, half, 0, 0, 1'000'000'000);

  // The trace holds far more distinct flows than one partition's table
  // could ever store; expiry must keep occupancy bounded...
  ASSERT_GT(full_report.state_high_water, 0u);
  EXPECT_LT(full_report.state_high_water, 4096u / 4);
  // ...and at a plateau: the peak is established in the first half of the
  // week; three more days of (churning) traffic move it by at most the
  // burst-to-burst jitter, never growth proportional to runtime.
  EXPECT_GE(full_report.state_high_water, half_report.state_high_water);
  EXPECT_LE(full_report.state_high_water,
            half_report.state_high_water + half_report.state_high_water / 4);

  // Idle-epoch sweeps actually ran and reclaimed the stale bursts.
  EXPECT_GT(full_report.epoch_sweeps, 0u);
  EXPECT_GT(full_report.state_expired_idle, 0u);
  EXPECT_GT(full_report.state_expired_idle, half_report.state_expired_idle);

  // Whatever remains resident at the end fits inside the plateau.
  EXPECT_LE(full_report.state_residents,
            full_report.state_high_water * full_report.partitions);
  EXPECT_EQ(full_report.violations, 0u) << full_report.str();
}

TEST(MonitorLongRun, MassExpiryBurstsStayCompliantWithAndWithoutEpochClock) {
  // The §5.3 pathological scenario: every burst begins with the whole
  // previous working set stale. With epoch_ns=0 the engine never sweeps —
  // the NF's own expire call absorbs each mass-expiry inline (big e, big
  // bound, still compliant). Both modes must be deterministic; they
  // legitimately differ from each other (the work moves between the
  // metered and unmetered side).
  perf::PcvRegistry reg;
  const auto result = contract_for("nat", reg);
  const auto packets = week_of_traffic(8000);

  const MonitorReport swept =
      run_monitor(result.contract, reg, packets, 0, 0, 1'000'000'000);
  const MonitorReport inline_expiry =
      run_monitor(result.contract, reg, packets, 0, 0, 0);

  EXPECT_EQ(swept.violations, 0u) << swept.str();
  EXPECT_EQ(inline_expiry.violations, 0u) << inline_expiry.str();
  EXPECT_EQ(swept.unattributed, 0u);
  EXPECT_EQ(inline_expiry.unattributed, 0u);

  // Epoch mode reclaims the bursts off-path; inline mode reports no
  // sweeps at all.
  EXPECT_GT(swept.state_expired_idle, 0u);
  EXPECT_EQ(inline_expiry.epoch_sweeps, 0u);
  EXPECT_EQ(inline_expiry.state_expired_idle, 0u);

  // Inline mode's expiry happens under the NF's e-term bound: the expire
  // classes must have seen non-trivial utilization without breaking it.
  EXPECT_EQ(report_to_json(inline_expiry),
            report_to_json(run_monitor(result.contract, reg, packets, 2, 8,
                                       0)))
      << "inline-expiry mode must be execution-invariant too";
}

TEST(MonitorLongRun, StoredContractReportIsByteIdentical) {
  perf::PcvRegistry gen_reg;
  const auto result = contract_for("nat", gen_reg);
  const auto packets = week_of_traffic(6000);

  // The operator workflow: serialise the artifact, reload it into a fresh
  // registry, monitor against the stored copy — zero symbex on this side.
  const std::string artifact =
      perf::contract_to_json(result.contract, gen_reg);
  perf::PcvRegistry op_reg;
  const perf::Contract stored = perf::contract_from_json(artifact, op_reg);

  const MonitorReport live = run_monitor(result.contract, gen_reg, packets,
                                         0, 0, 1'000'000'000);
  const MonitorReport from_store =
      run_monitor(stored, op_reg, packets, 0, 0, 1'000'000'000);
  EXPECT_EQ(report_to_json(live), report_to_json(from_store));
}

}  // namespace
}  // namespace bolt::monitor
