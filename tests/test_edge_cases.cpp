// Edge cases and failure-injection tests: the analysis must fail loudly on
// programs it cannot handle soundly, and the infrastructure must behave at
// the boundaries of its documented contracts.
#include <gtest/gtest.h>

#include "core/bolt.h"
#include "core/runner.h"
#include "core/scenarios.h"
#include "ir/builder.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "symbex/executor.h"

namespace bolt {
namespace {

net::Packet min_packet() {
  return net::Packet(std::vector<std::uint8_t>(60, 0), 1'000'000'000);
}

// --- builder misuse ----------------------------------------------------------

TEST(BuilderEdge, UnboundLabelAborts) {
  ir::IrBuilder b("bad");
  ir::Label never = b.make_label();
  b.jmp(never);
  EXPECT_DEATH(b.finish(), "unbound label");
}

TEST(BuilderEdge, DoubleBindAborts) {
  ir::IrBuilder b("bad");
  ir::Label l = b.make_label();
  b.bind(l);
  EXPECT_DEATH(b.bind(l), "bound twice");
}

TEST(BuilderEdge, FinishTwiceAborts) {
  ir::IrBuilder b("bad");
  b.drop();
  b.finish();
  EXPECT_DEATH(b.finish(), "already finished");
}

// --- interpreter boundaries ---------------------------------------------------

TEST(InterpEdge, PacketLoadBeyondFrameAborts) {
  ir::IrBuilder b("oob");
  b.forward(b.load_pkt_at(100, 4));  // beyond a 60-byte frame
  const ir::Program p = b.finish();
  ir::Interpreter interp(p, nullptr);
  net::Packet pkt = min_packet();
  EXPECT_DEATH(interp.run(pkt), "out of bounds");
}

TEST(InterpEdge, CallWithoutEnvAborts) {
  ir::IrBuilder b("noenv");
  b.call(0, ir::kNoReg, ir::kNoReg);
  b.drop();
  const ir::Program p = b.finish();
  ir::Interpreter interp(p, nullptr);
  net::Packet pkt = min_packet();
  EXPECT_DEATH(interp.run(pkt), "no env");
}

TEST(InterpEdge, ScratchOutOfRangeAborts) {
  ir::IrBuilder b("scratch_oob");
  b.set_scratch_slots(4);
  b.forward(b.load_mem(b.imm(99)));
  const ir::Program p = b.finish();
  ir::Interpreter interp(p, nullptr);
  net::Packet pkt = min_packet();
  EXPECT_DEATH(interp.run(pkt), "out of range");
}

TEST(InterpEdge, ScratchInitLongerThanScratchIsTruncated) {
  ir::IrBuilder b("trunc");
  b.set_scratch_slots(2);
  b.forward(b.load_mem(b.imm(1)));
  const ir::Program p = b.finish();
  ir::InterpreterOptions opts;
  opts.scratch_init = {7, 8, 9, 10};  // longer than 2 slots
  ir::Interpreter interp(p, nullptr, opts);
  net::Packet pkt = min_packet();
  EXPECT_EQ(interp.run(pkt).out_port, 8u);
}

// --- symbolic executor boundaries ---------------------------------------------

TEST(SymbexEdge, PartiallyOverlappingPacketFieldsAbort) {
  // Loading [12,2) and then [13,2) is a partially overlapping field — the
  // executor refuses rather than risk inconsistent symbols.
  ir::IrBuilder b("overlap");
  const ir::Reg a = b.load_pkt_at(12, 2);
  const ir::Reg c = b.load_pkt_at(13, 2);
  b.forward(b.add(a, c));
  const ir::Program p = b.finish();
  symbex::Executor ex({&p}, {});
  EXPECT_DEATH(ex.run(), "overlapping");
}

TEST(SymbexEdge, RepeatedExactFieldSharesTheSymbol) {
  ir::IrBuilder b("same_field");
  const ir::Reg a = b.load_pkt_at(12, 2);
  const ir::Reg c = b.load_pkt_at(12, 2);
  ir::Label eq = b.make_label();
  b.br_true(b.eq(a, c), eq);
  b.class_tag("impossible");
  b.drop();
  b.bind(eq);
  b.class_tag("always");
  b.forward_imm(0);
  const ir::Program p = b.finish();
  symbex::Executor ex({&p}, {});
  const auto paths = ex.run();
  // a == c folds to constant true: only one path exists.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].class_tags, std::vector<std::string>{"always"});
}

TEST(SymbexEdge, SymbolicScratchIndexAborts) {
  ir::IrBuilder b("sym_idx");
  b.set_scratch_slots(8);
  const ir::Reg idx = b.load_pkt_at(0, 1);  // symbolic
  b.forward(b.load_mem(idx));
  const ir::Program p = b.finish();
  symbex::Executor ex({&p}, {});
  EXPECT_DEATH(ex.run(), "symbolic");
}

TEST(SymbexEdge, MissingModelAborts) {
  ir::IrBuilder b("no_model");
  b.call(42, ir::kNoReg, ir::kNoReg);
  b.drop();
  const ir::Program p = b.finish();
  symbex::Executor ex({&p}, {});
  EXPECT_DEATH(ex.run(), "no symbolic model");
}

TEST(SymbexEdge, WriteThenReadSeesTheWrittenExpression) {
  ir::IrBuilder b("wrr");
  b.store_pkt_at(30, b.imm(0x11223344), 4);
  const ir::Reg back = b.load_pkt_at(30, 4);
  ir::Label ok = b.make_label();
  b.br_true(b.eq_imm(back, 0x11223344), ok);
  b.class_tag("broken");
  b.drop();
  b.bind(ok);
  b.class_tag("consistent");
  b.forward_imm(0);
  const ir::Program p = b.finish();
  symbex::Executor ex({&p}, {});
  const auto paths = ex.run();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].class_tags, std::vector<std::string>{"consistent"});
}

TEST(SymbexEdge, PathBudgetCapsEnumeration) {
  // 2^12 paths from 12 independent branches, capped at 16.
  ir::IrBuilder b("explode");
  const ir::Reg acc = b.imm(0);
  for (int i = 0; i < 12; ++i) {
    const ir::Reg bit = b.load_pkt_at(std::uint64_t(i), 1);
    ir::Label skip = b.make_label();
    b.br_false(b.gtu(bit, b.imm(127)), skip);
    b.assign(acc, b.add_imm(acc, 1));
    b.bind(skip);
  }
  b.forward(acc);
  const ir::Program p = b.finish();
  symbex::ExecutorOptions opts;
  opts.max_paths = 16;
  symbex::Executor ex({&p}, {}, opts);
  EXPECT_EQ(ex.run().size(), 16u);
}

TEST(SymbexEdge, LoopTripBudgetAbandonsRunaways) {
  // A loop bounded only by a 16-bit field exceeds a tiny trip budget.
  ir::IrBuilder b("runaway");
  const auto slot = b.local("i");
  b.store_local(slot, b.imm(0));
  const ir::Reg limit = b.load_pkt_at(0, 2);
  ir::Label loop = b.make_label();
  ir::Label done = b.make_label();
  b.bind(loop);
  b.loop_head("n");
  const ir::Reg i = b.load_local(slot);
  b.br_false(b.ltu(i, limit), done);
  b.store_local(slot, b.add_imm(i, 1));
  b.jmp(loop);
  b.bind(done);
  b.forward_imm(0);
  const ir::Program p = b.finish();
  symbex::ExecutorOptions opts;
  opts.max_loop_trips = 8;
  symbex::Executor ex({&p}, {}, opts);
  const auto paths = ex.run();
  EXPECT_GT(ex.stats().abandoned_paths, 0u);
  // The bounded unrollings (limit = 0..7) still complete.
  EXPECT_GE(paths.size(), 8u);
}

// --- chain runner ---------------------------------------------------------------

TEST(ChainEdge, DropInFirstNfStopsTheChain) {
  ir::IrBuilder b1("first");
  b1.class_tag("dropped_here");
  b1.drop();
  const ir::Program p1 = b1.finish();
  ir::IrBuilder b2("second");
  b2.class_tag("never_reached");
  b2.forward_imm(0);
  const ir::Program p2 = b2.finish();

  core::NfRunner runner({&p1, &p2}, nullptr);
  net::Packet pkt = min_packet();
  const auto r = runner.process(pkt);
  EXPECT_EQ(r.verdict, net::NfVerdict::kDrop);
  EXPECT_EQ(r.class_tag_names(), std::vector<std::string>{"first:dropped_here"});
}

TEST(ChainEdge, RewritesPropagateDownstream) {
  ir::IrBuilder b1("writer");
  b1.store_pkt_at(30, b1.imm(0xdead), 2);
  b1.forward_imm(0);
  const ir::Program p1 = b1.finish();
  ir::IrBuilder b2("reader");
  b2.forward(b2.load_pkt_at(30, 2));
  const ir::Program p2 = b2.finish();

  core::NfRunner runner({&p1, &p2}, nullptr);
  net::Packet pkt = min_packet();
  const auto r = runner.process(pkt);
  EXPECT_EQ(r.verdict, net::NfVerdict::kForward);
  EXPECT_EQ(r.out_port, 0xdeadu);
}

TEST(ChainEdge, CountersAccumulateAcrossTheChain) {
  ir::IrBuilder b1("a");
  b1.forward_imm(0);
  const ir::Program p1 = b1.finish();
  ir::IrBuilder b2("b");
  b2.forward_imm(0);
  const ir::Program p2 = b2.finish();

  core::NfRunner single({&p1}, nullptr);
  core::NfRunner chained({&p1, &p2}, nullptr);
  net::Packet one = min_packet();
  net::Packet two = min_packet();
  const auto r1 = single.process(one);
  const auto r2 = chained.process(two);
  EXPECT_EQ(r2.instructions, 2 * r1.instructions);
}

// --- generator robustness ---------------------------------------------------------

TEST(GeneratorEdge, MissingMethodTableAborts) {
  perf::PcvRegistry reg;
  core::NfAnalysis analysis;
  ir::IrBuilder b("x");
  b.drop();
  const ir::Program p = b.finish();
  analysis.name = "x";
  analysis.programs = {&p};
  analysis.methods = nullptr;
  core::ContractGenerator gen(reg);
  EXPECT_DEATH(gen.generate(analysis), "method table");
}

TEST(GeneratorEdge, TrivialProgramYieldsOneConstantEntry) {
  perf::PcvRegistry reg;
  ir::IrBuilder b("trivial");
  b.class_tag("all");
  b.drop();
  const ir::Program p = b.finish();
  dslib::MethodTable no_methods;
  core::NfAnalysis analysis{"trivial", {&p}, &no_methods};
  core::ContractGenerator gen(reg);
  const auto result = gen.generate(analysis);
  ASSERT_EQ(result.contract.entries().size(), 1u);
  for (const auto m : perf::kAllMetrics) {
    EXPECT_TRUE(result.contract.entries()[0].perf.get(m).is_constant());
  }
}

}  // namespace
}  // namespace bolt
