#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/builder.h"
#include "symbex/executor.h"
#include "symbex/expr.h"
#include "symbex/solver.h"

namespace bolt::symbex {
namespace {

TEST(Expr, ConstantFolding) {
  const ExprPtr a = Expr::constant(6);
  const ExprPtr b = Expr::constant(7);
  const ExprPtr prod = Expr::binary(ExprOp::kMul, a, b);
  ASSERT_TRUE(prod->is_const());
  EXPECT_EQ(prod->const_value(), 42u);
}

TEST(Expr, Identities) {
  SymbolTable syms;
  const ExprPtr x = Expr::symbol(syms.fresh("x", 32));
  EXPECT_TRUE(Expr::binary(ExprOp::kAdd, x, Expr::constant(0)) == x);
  EXPECT_TRUE(Expr::binary(ExprOp::kMul, x, Expr::constant(1)) == x);
  const ExprPtr zero = Expr::binary(ExprOp::kXor, x, x);
  ASSERT_TRUE(zero->is_const());
  EXPECT_EQ(zero->const_value(), 0u);
  const ExprPtr one = Expr::binary(ExprOp::kEq, x, x);
  ASSERT_TRUE(one->is_const());
  EXPECT_EQ(one->const_value(), 1u);
}

TEST(Expr, EvalUnderAssignment) {
  SymbolTable syms;
  const SymId x = syms.fresh("x", 16);
  const ExprPtr e = Expr::binary(
      ExprOp::kAdd, Expr::binary(ExprOp::kMul, Expr::symbol(x), Expr::constant(3)),
      Expr::constant(4));
  Assignment a{{x, 10}};
  EXPECT_EQ(e->eval(a), 34u);
}

TEST(Expr, LogicalNotOfComparisons) {
  SymbolTable syms;
  const ExprPtr x = Expr::symbol(syms.fresh("x", 8));
  const ExprPtr lt = Expr::binary(ExprOp::kLtU, x, Expr::constant(5));
  const ExprPtr not_lt = logical_not(lt);
  Assignment a{{0, 5}};
  EXPECT_EQ(lt->eval(a), 0u);
  EXPECT_EQ(not_lt->eval(a), 1u);
}

TEST(Expr, CollectSymbolsAndConstants) {
  SymbolTable syms;
  const SymId x = syms.fresh("x", 8);
  const SymId y = syms.fresh("y", 8);
  const ExprPtr e = Expr::binary(ExprOp::kAdd, Expr::symbol(x),
                                 Expr::binary(ExprOp::kMul, Expr::symbol(y),
                                              Expr::constant(9)));
  std::vector<SymId> ids;
  e->collect_symbols(ids);
  EXPECT_EQ(ids.size(), 2u);
  std::vector<std::uint64_t> consts;
  e->collect_constants(consts);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(consts[0], 9u);
}

class SolverTest : public ::testing::Test {
 protected:
  SymbolTable syms;
};

TEST_F(SolverTest, SimpleEquality) {
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, Expr::symbol(x), Expr::constant(0x0800))};
  const auto r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(x), 0x0800u);
}

TEST_F(SolverTest, ContradictionIsUnsat) {
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kEq, Expr::symbol(x), Expr::constant(1)),
      Expr::binary(ExprOp::kEq, Expr::symbol(x), Expr::constant(2))};
  EXPECT_EQ(solver.solve(cs).status, SolveStatus::kUnsat);
}

TEST_F(SolverTest, RangeConstraints) {
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kGeU, Expr::symbol(x), Expr::constant(5000)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(x), Expr::constant(6000)),
      Expr::binary(ExprOp::kNe, Expr::symbol(x), Expr::constant(5000))};
  const auto r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_GT(r.model.at(x), 5000u);
  EXPECT_LT(r.model.at(x), 6000u);
}

TEST_F(SolverTest, EmptyRangeIsUnsat) {
  const SymId x = syms.fresh("x", 16);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kGtU, Expr::symbol(x), Expr::constant(10)),
      Expr::binary(ExprOp::kLtU, Expr::symbol(x), Expr::constant(5))};
  EXPECT_EQ(solver.solve(cs).status, SolveStatus::kUnsat);
}

TEST_F(SolverTest, ShiftedFieldEquality) {
  // (x >> 4) == 4 && (x & 0xf) == 5  — the IPv4 version/ihl pattern.
  const SymId x = syms.fresh("ver_ihl", 8);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kShr, Expr::symbol(x), Expr::constant(4)),
                   Expr::constant(4)),
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kAnd, Expr::symbol(x), Expr::constant(0xf)),
                   Expr::constant(5))};
  const auto r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(x), 0x45u);
}

TEST_F(SolverTest, WidthBoundsRespected) {
  const SymId x = syms.fresh("x", 8);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kGtU, Expr::symbol(x), Expr::constant(300))};
  // An 8-bit symbol can never exceed 300.
  EXPECT_EQ(solver.solve(cs).status, SolveStatus::kUnsat);
}

TEST_F(SolverTest, MultiSymbolSystem) {
  const SymId x = syms.fresh("x", 8);
  const SymId y = syms.fresh("y", 8);
  Solver solver(syms);
  std::vector<ExprPtr> cs = {
      Expr::binary(ExprOp::kEq,
                   Expr::binary(ExprOp::kAdd, Expr::symbol(x), Expr::symbol(y)),
                   Expr::constant(10)),
      Expr::binary(ExprOp::kEq, Expr::symbol(x), Expr::constant(3))};
  const auto r = solver.solve(cs);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.at(x), 3u);
  EXPECT_EQ(r.model.at(y), 7u);
}

// --- executor ---------------------------------------------------------------

TEST(Executor, EnumeratesBothSidesOfABranch) {
  ir::IrBuilder b("two_paths");
  const ir::Reg et = b.load_pkt_at(12, 2);
  ir::Label is_ip = b.make_label();
  b.br_true(b.eq_imm(et, 0x0800), is_ip);
  b.class_tag("not_ip");
  b.drop();
  b.bind(is_ip);
  b.class_tag("ip");
  b.forward_imm(1);
  const ir::Program p = b.finish();

  Executor ex({&p}, {});
  auto paths = ex.run();
  ASSERT_EQ(paths.size(), 2u);
  ex.solve_inputs(paths);
  int forwards = 0;
  for (const auto& path : paths) {
    EXPECT_TRUE(path.solved);
    if (path.action == PathAction::kForward) ++forwards;
  }
  EXPECT_EQ(forwards, 1);
}

TEST(Executor, InfeasiblePathsArePruned) {
  ir::IrBuilder b("pruned");
  const ir::Reg x = b.load_pkt_at(0, 1);
  ir::Label a = b.make_label();
  ir::Label contradiction = b.make_label();
  b.br_true(b.eq_imm(x, 5), a);
  b.drop();
  b.bind(a);
  // x == 5 here, so x == 6 is infeasible.
  b.br_true(b.eq_imm(x, 6), contradiction);
  b.forward_imm(0);
  b.bind(contradiction);
  b.forward_imm(9);
  const ir::Program p = b.finish();

  Executor ex({&p}, {});
  const auto paths = ex.run();
  EXPECT_EQ(paths.size(), 2u);  // x!=5 drop; x==5 forward. No third path.
  EXPECT_GE(ex.stats().pruned_branches, 1u);
}

TEST(Executor, ModelsForkPerOutcome) {
  ir::IrBuilder b("model_fork");
  const auto [found, value] = b.call(0, ir::kNoReg, ir::kNoReg);
  (void)value;
  ir::Label hit = b.make_label();
  b.br_true(found, hit);
  b.class_tag("miss");
  b.drop();
  b.bind(hit);
  b.class_tag("hit");
  b.forward_imm(0);
  const ir::Program p = b.finish();

  std::map<std::int64_t, SymbolicModel> models;
  models[0] = [](SymbolTable& symbols, const ExprPtr&, const ExprPtr&) {
    std::vector<ModelOutcome> outs;
    ModelOutcome hit_case;
    hit_case.case_label = "hit";
    hit_case.ret0 = Expr::constant(1);
    hit_case.ret1 = Expr::symbol(symbols.fresh("value", 16));
    outs.push_back(hit_case);
    ModelOutcome miss_case;
    miss_case.case_label = "miss";
    miss_case.ret0 = Expr::constant(0);
    outs.push_back(miss_case);
    return outs;
  };
  Executor ex({&p}, std::move(models));
  auto paths = ex.run();
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& path : paths) {
    ASSERT_EQ(path.calls.size(), 1u);
    if (path.action == PathAction::kForward) {
      EXPECT_EQ(path.calls[0].case_label, "hit");
      EXPECT_EQ(path.class_tags, std::vector<std::string>{"hit"});
    } else {
      EXPECT_EQ(path.calls[0].case_label, "miss");
    }
  }
}

TEST(Executor, LoopsUnrollWithTripCounts) {
  // for (i = 0; i < pkt[0]; i++) {}; pkt[0] constrained <= 3 by width/branch
  ir::IrBuilder b("loop");
  const auto i_slot = b.local("i");
  b.store_local(i_slot, b.imm(0));
  const ir::Reg limit = b.load_pkt_at(0, 1);
  ir::Label too_big = b.make_label();
  b.br_false(b.leu(limit, b.imm(3)), too_big);
  ir::Label loop = b.make_label();
  ir::Label done = b.make_label();
  b.bind(loop);
  b.loop_head("n");
  const ir::Reg i = b.load_local(i_slot);
  b.br_false(b.ltu(i, limit), done);
  b.store_local(i_slot, b.add_imm(i, 1));
  b.jmp(loop);
  b.bind(done);
  b.forward_imm(0);
  b.bind(too_big);
  b.drop();
  const ir::Program p = b.finish();

  Executor ex({&p}, {});
  auto paths = ex.run();
  // limit = 0,1,2,3 (distinct unrolls) + the too_big path.
  ASSERT_EQ(paths.size(), 5u);
  ex.solve_inputs(paths);
  std::set<std::uint64_t> trips;
  for (const auto& path : paths) {
    if (path.action == PathAction::kForward) {
      trips.insert(path.loop_trips.at(0));
    }
  }
  EXPECT_EQ(trips.size(), 4u);
}

TEST(Executor, ChainSharesThePacket) {
  // NF1 forwards IPv4 only; NF2 branches on the same field: the incompatible
  // combination must not appear.
  ir::IrBuilder b1("nf1");
  const ir::Reg et1 = b1.load_pkt_at(12, 2);
  ir::Label fwd1 = b1.make_label();
  b1.br_true(b1.eq_imm(et1, 0x0800), fwd1);
  b1.class_tag("drop_non_ip");
  b1.drop();
  b1.bind(fwd1);
  b1.class_tag("fwd_ip");
  b1.forward_imm(0);
  const ir::Program p1 = b1.finish();

  ir::IrBuilder b2("nf2");
  const ir::Reg et2 = b2.load_pkt_at(12, 2);
  ir::Label ip2 = b2.make_label();
  b2.br_true(b2.eq_imm(et2, 0x0800), ip2);
  b2.class_tag("non_ip");
  b2.drop();
  b2.bind(ip2);
  b2.class_tag("ip");
  b2.forward_imm(0);
  const ir::Program p2 = b2.finish();

  Executor ex({&p1, &p2}, {});
  auto paths = ex.run();
  ASSERT_EQ(paths.size(), 2u);  // non-IP dropped at NF1; IP through both.
  for (const auto& path : paths) {
    if (path.action == PathAction::kForward) {
      EXPECT_EQ(path.class_tags,
                (std::vector<std::string>{"nf1:fwd_ip", "nf2:ip"}));
    }
  }
}

TEST(Executor, SolveProducesRunnablePacketFields) {
  ir::IrBuilder b("fields");
  const ir::Reg et = b.load_pkt_at(12, 2);
  ir::Label yes = b.make_label();
  b.br_true(b.eq_imm(et, 0x0806), yes);
  b.drop();
  b.bind(yes);
  b.forward_imm(0);
  const ir::Program p = b.finish();

  Executor ex({&p}, {});
  auto paths = ex.run();
  ex.solve_inputs(paths);
  for (const auto& path : paths) {
    ASSERT_TRUE(path.solved);
    if (path.action == PathAction::kForward) {
      ASSERT_EQ(path.fields.size(), 1u);
      EXPECT_EQ(path.model.at(path.fields[0].sym), 0x0806u);
    }
  }
}

}  // namespace
}  // namespace bolt::symbex
