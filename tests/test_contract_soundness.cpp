// Method-contract soundness sweeps: for every stateful method of every
// composite, across randomized workloads, the manually derived contract
// evaluated at the reported PCVs must dominate the metered cost — and the
// unique-line expression must never exceed the memory-access expression
// (otherwise the cycle derivation would be ill-formed).
//
// This is the library-level half of the paper's "essential property"
// (§2.2); test_pipeline.cpp checks the composed, NF-level half.
#include <gtest/gtest.h>

#include "core/scenarios.h"
#include "dslib/bridge_state.h"
#include "dslib/lb_state.h"
#include "dslib/nat_state.h"
#include "net/workload.h"
#include "support/random.h"

namespace bolt::dslib {
namespace {

using perf::Metric;

/// Calls a method through the dispatcher while checking the outcome against
/// the method table's contract.
class ContractChecker {
 public:
  ContractChecker(DispatchEnv& env, const MethodTable& methods)
      : env_(env), methods_(methods) {}

  ir::CallOutcome call(std::int64_t method, std::uint64_t arg0,
                       std::uint64_t arg1, const net::Packet& packet) {
    ir::CostMeter meter;
    ir::CallOutcome out = env_.call(method, arg0, arg1, packet, meter);
    const perf::MethodContract& contract = methods_.at(method).contract;
    EXPECT_TRUE(contract.has_case(out.case_label))
        << methods_.at(method).name << " case " << out.case_label;
    if (!contract.has_case(out.case_label)) return out;
    const auto& exprs = contract.for_case(out.case_label);
    const std::int64_t pred_i =
        exprs.get(Metric::kInstructions).eval(out.pcvs);
    const std::int64_t pred_m =
        exprs.get(Metric::kMemoryAccesses).eval(out.pcvs);
    const std::int64_t unique =
        contract.unique_lines(out.case_label).eval(out.pcvs);
    EXPECT_GE(pred_i, static_cast<std::int64_t>(meter.instructions()))
        << methods_.at(method).name << "/" << out.case_label;
    EXPECT_GE(pred_m, static_cast<std::int64_t>(meter.accesses()))
        << methods_.at(method).name << "/" << out.case_label;
    EXPECT_LE(unique, pred_m)
        << methods_.at(method).name << "/" << out.case_label;
    EXPECT_GE(unique, 0) << methods_.at(method).name;
    ++checked_;
    return out;
  }

  std::size_t checked() const { return checked_; }

 private:
  DispatchEnv& env_;
  const MethodTable& methods_;
  std::size_t checked_ = 0;
};

class BridgeMethodSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgeMethodSoundness, AllCasesDominated) {
  perf::PcvRegistry reg;
  MacTable::Config cfg;
  cfg.capacity = 512;
  cfg.ttl_ns = 2'000'000;
  cfg.rehash_threshold = 3;  // low threshold: rehash happens in the sweep
  cfg.initial_hash_key = 0;
  BridgeState state(cfg, reg);
  DispatchEnv env;
  state.bind(env);
  const MethodTable methods = BridgeState::method_table(reg, cfg);
  ContractChecker checker(env, methods);

  // Adversarial MACs guarantee long chains and an eventual rehash.
  const auto attack = net::colliding_keys(48, 0, 512, 0, 0x020000000000ULL);
  support::Rng rng(GetParam());
  net::Packet pkt = net::packet_for_tuple(net::tuple_for_index(1), 0);
  for (int i = 0; i < 4000; ++i) {
    pkt.set_timestamp_ns(1'000'000'000 + std::uint64_t(i) * 7'000);
    const std::uint64_t mac = rng.chance(0.3)
                                  ? attack[rng.below(attack.size())]
                                  : 0x020000300000ULL + rng.below(600);
    switch (rng.below(3)) {
      case 0:
        checker.call(BridgeState::kExpire, 0, 0, pkt);
        break;
      case 1:
        checker.call(BridgeState::kLearn, mac, rng.below(8), pkt);
        break;
      default:
        checker.call(BridgeState::kLookup, mac, 0, pkt);
        break;
    }
  }
  EXPECT_EQ(checker.checked(), 4000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeMethodSoundness,
                         ::testing::Values(1, 2, 3));

class NatMethodSoundness
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(NatMethodSoundness, AllCasesDominated) {
  const auto [seed, use_b] = GetParam();
  perf::PcvRegistry reg;
  NatState::Config cfg;
  cfg.flow.capacity = 256;
  cfg.flow.ttl_ns = 3'000'000;
  cfg.allocator = use_b ? NatState::AllocatorKind::kB
                        : NatState::AllocatorKind::kA;
  NatState state(cfg, reg);
  DispatchEnv env;
  state.bind(env);
  const MethodTable methods = NatState::method_table(reg, cfg);
  ContractChecker checker(env, methods);

  support::Rng rng(seed);
  for (int i = 0; i < 4000; ++i) {
    const net::TimestampNs now = 1'000'000'000 + std::uint64_t(i) * 9'000;
    const std::uint64_t flow = rng.below(400);
    net::Packet pkt = net::packet_for_tuple(net::tuple_for_index(flow), now);
    switch (rng.below(4)) {
      case 0:
        checker.call(NatState::kExpire, 0, 0, pkt);
        break;
      case 1:
        checker.call(NatState::kLookupInt, 0, 0, pkt);
        break;
      case 2: {
        net::Packet ext = net::packet_for_tuple(
            net::tuple_for_index(flow, false), now, 1);
        checker.call(NatState::kLookupExt, 0, 0, ext);
        break;
      }
      default: {
        // Only add flows that are not yet mapped (the NF's usage pattern).
        ir::CostMeter probe_meter;
        const auto probe =
            env.call(NatState::kLookupInt, 0, 0, pkt, probe_meter);
        if (probe.v0 == 0) checker.call(NatState::kAddFlow, 0, 0, pkt);
        break;
      }
    }
  }
  EXPECT_GT(checker.checked(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAllocators, NatMethodSoundness,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Bool()));

class LbMethodSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LbMethodSoundness, AllCasesDominated) {
  perf::PcvRegistry reg;
  LbState::Config cfg;
  cfg.flow.capacity = 256;
  cfg.flow.ttl_ns = 3'000'000;
  cfg.ring.backend_count = 8;
  cfg.ring.table_size = 211;
  LbState state(cfg, reg);
  DispatchEnv env;
  state.bind(env);
  const MethodTable methods = LbState::method_table(reg, cfg);
  ContractChecker checker(env, methods);

  support::Rng rng(GetParam());
  state.ring().all_alive(1'000'000'000);
  for (int i = 0; i < 4000; ++i) {
    const net::TimestampNs now = 1'000'000'000 + std::uint64_t(i) * 9'000;
    const std::uint64_t flow = rng.below(400);
    net::Packet pkt =
        net::packet_for_tuple(net::tuple_for_index(flow, false), now, 1);
    // Occasionally flap a backend to exercise dead paths and ring walks.
    if (rng.chance(0.01)) {
      state.ring().kill_backend(static_cast<std::uint32_t>(rng.below(8)));
    }
    switch (rng.below(5)) {
      case 0:
        checker.call(LbState::kExpire, 0, 0, pkt);
        break;
      case 1:
        checker.call(LbState::kFlowLookup, 0, 0, pkt);
        break;
      case 2:
        checker.call(LbState::kBackendAlive, rng.below(8), 0, pkt);
        break;
      case 3: {
        // RingSelect only for unmapped flows; Reselect only for mapped.
        ir::CostMeter probe_meter;
        const auto probe =
            env.call(LbState::kFlowLookup, 0, 0, pkt, probe_meter);
        checker.call(probe.v0 != 0 ? LbState::kReselect : LbState::kRingSelect,
                     0, 0, pkt);
        break;
      }
      default: {
        net::HeartbeatSpec hb;
        hb.backends = 8;
        hb.packet_count = 1;
        hb.seed = rng.next();
        auto beat = net::heartbeat_traffic(hb);
        beat[0].set_timestamp_ns(now);
        checker.call(LbState::kHeartbeat, 0, 0, beat[0]);
        break;
      }
    }
  }
  EXPECT_EQ(checker.checked(), 4000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LbMethodSoundness, ::testing::Values(1, 2, 3));

class LpmContractSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmContractSoundness, TrieAndDirDominated) {
  perf::PcvRegistry reg;
  LpmTrieState trie_state(reg);
  LpmDirState dir_state(reg);
  support::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const int len = static_cast<int>(rng.range(4, 32));
    const std::uint32_t mask = len == 32 ? ~0u : ~((1u << (32 - len)) - 1);
    const std::uint32_t prefix = static_cast<std::uint32_t>(rng.next()) & mask;
    trie_state.trie().insert(prefix, len, static_cast<std::uint16_t>(len));
    dir_state.table().insert(prefix, len, static_cast<std::uint16_t>(len));
  }
  DispatchEnv trie_env, dir_env;
  trie_state.bind(trie_env);
  dir_state.bind(dir_env);
  const MethodTable trie_methods = LpmTrieState::method_table(reg);
  const MethodTable dir_methods = LpmDirState::method_table(reg);
  ContractChecker trie_check(trie_env, trie_methods);
  ContractChecker dir_check(dir_env, dir_methods);
  net::Packet pkt = net::packet_for_tuple(net::tuple_for_index(1), 0);
  for (int i = 0; i < 3000; ++i) {
    const std::uint32_t addr = static_cast<std::uint32_t>(rng.next());
    trie_check.call(LpmTrieState::kLookup, addr, 0, pkt);
    dir_check.call(LpmDirState::kLookup, addr, 0, pkt);
  }
  EXPECT_EQ(trie_check.checked(), 3000u);
  EXPECT_EQ(dir_check.checked(), 3000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmContractSoundness,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace bolt::dslib
