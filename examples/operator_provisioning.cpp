// Operator use case (paper §5.2): provisioning a network around a MAC
// bridge whose hash table defends itself by rehashing under suspected
// collision attacks.
//
// The operator cannot read the bridge's code, but the contract tells them:
//   * what normal traffic costs (and how that scales with the PCVs),
//   * what the worst case under attack costs (the rehash cliff),
//   * where to set the rehash threshold so the defence never fires on
//     benign traffic — using the Distiller on a sample of real traffic.
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  perf::PcvRegistry pcvs;
  const auto config = core::default_bridge_config();
  const core::NfInstance bridge = core::make_bridge(pcvs, config);

  core::ContractGenerator generator(pcvs);
  const core::GenerationResult result = generator.generate(bridge.analysis());

  const perf::PcvId t = pcvs.require("t");
  const perf::PcvId o = pcvs.require("o");
  const perf::PcvId e = pcvs.require("e");

  // --- 1. What does normal unicast traffic cost? ---
  const perf::ContractEntry& normal = result.contract.require(
      "unicast | bridge.expire=expire,bridge.learn=known,bridge.lookup=hit");
  perf::PcvBinding typical;
  typical.set(t, 2);
  std::printf("== Normal operation ==\n");
  std::printf("known-station unicast, short chains (t=2): <= %s cycles/packet\n",
              support::with_commas(
                  normal.perf.get(perf::Metric::kCycles).eval(typical))
                  .c_str());

  // --- 2. What is the worst case when the defence fires? ---
  const perf::ContractEntry& rehash = result.contract.require(
      "unicast | bridge.expire=expire,bridge.learn=rehash,bridge.lookup=hit");
  perf::PcvBinding attack;
  attack.set(t, config.rehash_threshold + 1);
  attack.set(o, config.capacity);  // full table must be rebuilt
  std::printf("\n== Under attack (rehash fires, table full) ==\n");
  std::printf("one rehash packet: <= %s instructions, <= %s cycles\n",
              support::with_commas(
                  rehash.perf.get(perf::Metric::kInstructions).eval(attack))
                  .c_str(),
              support::with_commas(
                  rehash.perf.get(perf::Metric::kCycles).eval(attack))
                  .c_str());
  std::printf("-> provision a queue deep enough to absorb one such packet\n"
              "   per rekeying, or rate-limit learning.\n");

  // --- 3. Where should the rehash threshold sit? Ask the Distiller. ---
  auto runner = bridge.make_runner();
  core::Distiller distiller(*runner, nullptr, &bridge.methods);
  net::BridgeSpec workload;
  workload.stations = 3000;
  workload.packet_count = 50'000;
  auto packets = net::bridge_traffic(workload);
  const core::DistillerReport report = distiller.run(packets);

  std::printf("\n== Distiller: benign bucket-traversal distribution ==\n");
  std::printf("%s\n", report.density_table(t, pcvs).c_str());
  const auto ccdf = report.ccdf(t);
  double beyond = 0.0;
  for (const auto& [value, frac] : ccdf) {
    if (value <= config.rehash_threshold) beyond = frac;
  }
  std::printf("fraction of benign packets beyond the threshold (%llu): %.5f%%\n",
              static_cast<unsigned long long>(config.rehash_threshold),
              beyond * 100.0);
  std::printf("-> the defence will essentially never fire on this workload;\n"
              "   an attacker who defeats the secret key still only gets one\n"
              "   rehash per rekeying (the cliff priced above).\n");

  // --- 4. Sanity: the mass-expiry worst case the operator also absorbs. ---
  perf::PcvBinding idle_burst;
  idle_burst.set(e, config.capacity);
  idle_burst.set(t, 1);
  const std::int64_t burst =
      result.contract.worst_case(perf::Metric::kCycles, idle_burst);
  std::printf("\n== After an idle period (all %zu entries expire at once) ==\n",
              config.capacity);
  std::printf("first packet pays <= %s cycles\n",
              support::with_commas(burst).c_str());
  return 0;
}
