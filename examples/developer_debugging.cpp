// Developer use case (paper §5.3, "Debugging configuration bottlenecks"):
// finding VigNAT's expiry-batching bug with a contract + the Distiller.
//
// Symptom: rare multi-microsecond latency spikes under churny traffic.
// Step 1: read the contract — the PCV `e` dominates (its coefficient is an
//         order of magnitude above the others), so whatever makes `e` large
//         makes packets slow.
// Step 2: distill a traffic sample — the expired-flows distribution shows
//         huge batches, all landing on second boundaries.
// Step 3: fix the timestamp granularity, re-distill, tail gone.
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

namespace {

core::DistillerReport distill(std::uint64_t granularity_ns,
                              perf::PcvRegistry& reg) {
  auto cfg = core::default_nat_config();
  cfg.flow.stamp_granularity_ns = granularity_ns;
  cfg.flow.ttl_ns = 1'000'000'000;
  const core::NfInstance nat = core::make_nat(reg, cfg);
  hw::RealisticSim testbed;
  auto runner = nat.make_runner(nf::framework_full(), &testbed);
  core::Distiller distiller(*runner, &testbed, &nat.methods);
  net::ChurnSpec spec;
  spec.active_flows = 1024;
  spec.churn = 0.01;
  spec.packet_count = 250'000;
  auto packets = net::churn_traffic(spec);
  return distiller.run(packets);
}

}  // namespace

int main() {
  perf::PcvRegistry pcvs;
  auto cfg = core::default_nat_config();
  cfg.flow.stamp_granularity_ns = 1'000'000'000;  // the buggy config
  const core::NfInstance nat = core::make_nat(pcvs, cfg);

  // Step 1 — the contract points at `e`.
  core::ContractGenerator generator(pcvs);
  const auto result = generator.generate(nat.analysis());
  const auto& known = result.contract.require(
      "internal_known | nat.expire=expire,nat.lookup_int=hit");
  std::printf("== Step 1: read the contract ==\n\n");
  std::printf("known flows: %s instructions\n\n",
              known.perf.get(perf::Metric::kInstructions).str(pcvs).c_str());
  const auto& instr = known.perf.get(perf::Metric::kInstructions);
  std::printf("coefficient of e: %lld; of t: %lld; of c: %lld\n",
              static_cast<long long>(
                  instr.coefficient(perf::Monomial::pcv(pcvs.require("e")))),
              static_cast<long long>(
                  instr.coefficient(perf::Monomial::pcv(pcvs.require("t")))),
              static_cast<long long>(
                  instr.coefficient(perf::Monomial::pcv(pcvs.require("c")))));
  std::printf("-> `e` dominates: latency spikes must come from expiry "
              "batches.\n\n");

  // Step 2 — distill and confirm the batching.
  perf::PcvRegistry reg_bug;
  const auto buggy = distill(1'000'000'000, reg_bug);
  std::printf("== Step 2: distill with second-granularity stamps ==\n\n%s\n",
              buggy.density_table(reg_bug.require("e"), reg_bug).c_str());
  std::printf("worst per-packet latency: %s cycles\n\n",
              support::with_commas(static_cast<std::int64_t>(
                                       buggy.worst_measured("cycles")))
                  .c_str());

  // Step 3 — fix the granularity and re-distill.
  perf::PcvRegistry reg_fixed;
  const auto fixed = distill(1'000'000, reg_fixed);
  std::printf("== Step 3: millisecond-granularity stamps ==\n\n%s\n",
              fixed.density_table(reg_fixed.require("e"), reg_fixed).c_str());
  std::printf("worst per-packet latency: %s cycles\n\n",
              support::with_commas(static_cast<std::int64_t>(
                                       fixed.worst_measured("cycles")))
                  .c_str());
  std::printf("The tail collapses: expiry now happens a few flows at a time\n"
              "(the paper's Figure 4). The median rises slightly — more\n"
              "packets do a little expiry work — which is the trade the\n"
              "contract lets the developer see *before* shipping the fix.\n");
  return 0;
}
