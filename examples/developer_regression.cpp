// Developer use case, monitor edition (paper §5.3): catching a performance
// regression in CI with the contract monitor.
//
// The NAT's contract was generated for the shipped packet-I/O framework.
// A refactor then quietly made the rx path ~50% more expensive (here:
// inflated framework costs on the measurement side — the stand-in for any
// regression the contract did not price). A functional test suite stays
// green; the monitor does not: every packet now exceeds its class's bound,
// and the report names the class, the packet index, and the predicted vs
// measured values — a ready-made reproducer.
#include <cstdio>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

namespace {

monitor::MonitorReport run_monitor(const core::GenerationResult& result,
                                   const perf::PcvRegistry& pcvs,
                                   const std::vector<net::Packet>& packets,
                                   bool regressed) {
  monitor::MonitorOptions opts;
  opts.partitions = 4;
  if (regressed) {
    opts.framework.rx_instructions += opts.framework.rx_instructions / 2;
    opts.framework.rx_accesses += opts.framework.rx_accesses / 2;
  }
  monitor::MonitorEngine engine(result.contract, pcvs, opts);
  return engine.run(packets, monitor::MonitorEngine::named_factory("nat"));
}

}  // namespace

int main() {
  perf::PcvRegistry pcvs;
  core::NfTarget nat;
  core::make_named_target("nat", pcvs, nat);
  core::ContractGenerator generator(pcvs);
  const core::GenerationResult result = generator.generate(nat.analysis());

  net::ZipfSpec spec;
  spec.flow_pool = 1024;
  spec.skew = 1.1;
  spec.packet_count = 20'000;
  const auto packets = net::zipf_traffic(spec);

  // -- CI gate, before the regression --------------------------------------
  const auto clean = run_monitor(result, pcvs, packets, false);
  std::printf("== Baseline run ==\nviolations: %llu (gate passes)\n\n",
              static_cast<unsigned long long>(clean.violations));

  // -- CI gate, after the regression ---------------------------------------
  const auto broken = run_monitor(result, pcvs, packets, true);
  std::printf("== After the rx-path regression ==\nviolations: %llu\n\n",
              static_cast<unsigned long long>(broken.violations));

  for (const auto& cls : broken.classes) {
    for (const auto& offender : cls.offenders) {
      if (static_cast<std::int64_t>(offender.measured) <= offender.predicted) {
        continue;
      }
      std::printf("reproducer: class \"%s\"\n  packet %llu: %s measured %s,"
                  " bound %s\n",
                  cls.input_class.c_str(),
                  static_cast<unsigned long long>(offender.packet_index),
                  std::string(perf::metric_name(offender.metric)).c_str(),
                  support::with_commas(
                      static_cast<std::int64_t>(offender.measured))
                      .c_str(),
                  support::with_commas(offender.predicted).c_str());
      break;  // one reproducer per class is plenty for the bug report
    }
  }

  std::printf("\nThe contract pinpoints *which* input classes regressed and\n"
              "by how much; replaying the named packet under a profiler\n"
              "finds the cause. The functional suite never noticed.\n");
  return clean.violations == 0 && broken.violations > 0 ? 0 : 1;
}
