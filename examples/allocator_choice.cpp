// Developer use case (paper §5.3, "Picking the appropriate data structure
// implementation"): choose between two NAT port allocators from their
// contracts, before running any A/B test.
//
// Both allocators are O(1); the difference hides in the constants and in
// one PCV (allocator B's scan probes `s`). The contract makes the trade-off
// explicit, and the Distiller binds `s` for the traffic mix you actually
// expect.
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

namespace {

perf::Contract contract_for(dslib::NatState::AllocatorKind kind,
                            perf::PcvRegistry& reg) {
  auto cfg = core::default_nat_config();
  cfg.flow.capacity = 1024;
  cfg.allocator = kind;
  const core::NfInstance nat = core::make_nat(reg, cfg);
  core::ContractGenerator generator(reg);
  return generator.generate(nat.analysis()).contract;
}

}  // namespace

int main() {
  perf::PcvRegistry pcvs;
  const perf::Contract with_a =
      contract_for(dslib::NatState::AllocatorKind::kA, pcvs);
  const perf::Contract with_b =
      contract_for(dslib::NatState::AllocatorKind::kB, pcvs);

  const std::string new_flow =
      "internal_new | nat.expire=expire,nat.lookup_int=miss,nat.add_flow=ok";

  std::printf("== The new-flow entry, side by side ==\n\n");
  std::printf("Allocator A: %s\n",
              with_a.require(new_flow)
                  .perf.get(perf::Metric::kInstructions)
                  .str(pcvs)
                  .c_str());
  std::printf("Allocator B: %s\n\n",
              with_b.require(new_flow)
                  .perf.get(perf::Metric::kInstructions)
                  .str(pcvs)
                  .c_str());
  std::printf("B's expression carries the PCV `s` (bitmap probes); A's does\n"
              "not. The choice therefore reduces to: what will `s` be for\n"
              "*my* traffic? That is a question about occupancy.\n\n");

  // Evaluate both contracts across the occupancy spectrum. For a bitmap
  // scan with uniformly scattered free slots, E[s] ~ capacity / free.
  std::printf("== Predicted new-flow instructions vs table occupancy ==\n\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"occupancy", "E[s]", "Allocator A", "Allocator B", "winner"});
  const perf::PcvId s = pcvs.require("s");
  for (const double occ : {0.10, 0.50, 0.80, 0.90, 0.95, 0.99}) {
    const std::uint64_t expected_s = static_cast<std::uint64_t>(
        1.0 / (1.0 - occ));
    perf::PcvBinding bind;
    bind.set(s, expected_s);
    const std::int64_t cost_a = with_a.require(new_flow)
                                    .perf.get(perf::Metric::kInstructions)
                                    .eval(bind);
    const std::int64_t cost_b = with_b.require(new_flow)
                                    .perf.get(perf::Metric::kInstructions)
                                    .eval(bind);
    char occ_s[16];
    std::snprintf(occ_s, sizeof occ_s, "%.0f%%", occ * 100);
    rows.push_back({occ_s, std::to_string(expected_s),
                    support::with_commas(cost_a), support::with_commas(cost_b),
                    cost_b < cost_a ? "B" : "A"});
  }
  std::printf("%s\n", support::render_table(rows).c_str());

  std::printf(
      "The crossover is visible straight from the contracts: below ~90%%\n"
      "occupancy the lighter constants favour B; near saturation the scan\n"
      "term takes over and A wins — the paper's Figures 5-7 without running\n"
      "a single A/B test. (Run bench/fig567_allocators to see the measured\n"
      "CDFs agree.)\n");
  return 0;
}
