// Operator use case, monitor edition (paper §2/§5.2): continuous
// validation of a provisioned bound.
//
// The operator of examples/operator_provisioning.cpp provisioned queues
// around the bridge contract. The monitor closes the loop: stream real
// (heavy-tailed) traffic through the bridge, attribute every packet to its
// contract class, and watch the *headroom* — how close each class runs to
// its provisioned bound. A violation (or shrinking headroom after a config
// change) pages before customers notice.
#include <cstdio>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  // The artifact the operator was handed: the bridge contract.
  perf::PcvRegistry pcvs;
  core::NfTarget bridge;
  core::make_named_target("bridge", pcvs, bridge);
  core::ContractGenerator generator(pcvs);
  const core::GenerationResult result = generator.generate(bridge.analysis());

  // A day of (scaled-down) switch traffic: many stations, some broadcast.
  net::BridgeSpec traffic;
  traffic.stations = 2000;
  traffic.broadcast_fraction = 0.08;
  traffic.packet_count = 60'000;
  auto packets = net::bridge_traffic(traffic);

  monitor::MonitorOptions opts;
  opts.shards = 8;  // the deployment's RSS width
  monitor::MonitorEngine engine(result.contract, pcvs, opts);
  const monitor::MonitorReport report =
      engine.run(packets, monitor::MonitorEngine::named_factory("bridge"));

  std::printf("== Shift report: bridge vs its contract ==\n\n%s\n",
              report.str().c_str());

  // Operator's eyes go to two numbers: violations (must be zero) and the
  // utilization histogram of the hot classes (how much provisioned
  // headroom is actually in use).
  std::printf("== Headroom by class (share of bound in use, cycles) ==\n");
  for (const auto& cls : report.classes) {
    if (cls.packets == 0) continue;
    const auto& cyc = cls.metrics[perf::metric_index(perf::Metric::kCycles)];
    std::printf("%-66s worst %5.1f%%\n", cls.input_class.c_str(),
                cyc.max_utilization() * 100.0);
  }

  std::printf(
      "\nviolations: %llu -> the provisioned bounds hold under real "
      "traffic;\nthe worst packet of the hottest class is the one to keep "
      "an eye on\nafter the next config push.\n",
      static_cast<unsigned long long>(report.violations));
  return report.violations == 0 ? 0 : 1;
}
