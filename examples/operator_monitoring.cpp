// Operator use case, monitor edition (paper §2/§5.2): continuous
// validation of a provisioned bound — the full operator workflow:
//
//   generate (dev side)  ->  store the artifact  ->  monitor --contract
//
// The operator of examples/operator_provisioning.cpp provisioned queues
// around the bridge contract. The monitor closes the loop: stream real
// (heavy-tailed) traffic through the bridge, attribute every packet to its
// contract class, and watch the *headroom* — how close each class runs to
// its provisioned bound, at p50/p99/worst. A violation (or shrinking
// headroom after a config change) pages before customers notice. Crucially
// the operator side never runs symbolic execution: it validates against
// the stored JSON artifact alone (here: serialised and reloaded in
// process; in production: `bolt_cli contract bridge --out contract.json`
// once, then `bolt_cli monitor bridge --contract contract.json` forever).
#include <cstdio>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "perf/contract_io.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  // Dev side: generate the contract once and ship it as JSON.
  std::string artifact;
  {
    perf::PcvRegistry dev_pcvs;
    core::NfTarget bridge;
    core::make_named_target("bridge", dev_pcvs, bridge);
    core::ContractGenerator generator(dev_pcvs);
    artifact = perf::contract_to_json(
        generator.generate(bridge.analysis()).contract, dev_pcvs);
  }

  // Operator side: all that exists here is the artifact.
  perf::PcvRegistry pcvs;
  const perf::Contract contract = perf::contract_from_json(artifact, pcvs);

  // A day of (scaled-down) switch traffic: many stations, some broadcast.
  net::BridgeSpec traffic;
  traffic.stations = 2000;
  traffic.broadcast_fraction = 0.08;
  traffic.packet_count = 60'000;
  auto packets = net::bridge_traffic(traffic);

  monitor::MonitorOptions opts;
  opts.partitions = 8;  // the deployment's RSS width
  monitor::MonitorEngine engine(contract, pcvs, opts);
  const monitor::MonitorReport report =
      engine.run(packets, monitor::MonitorEngine::named_factory("bridge"));

  std::printf("== Shift report: bridge vs its contract ==\n\n%s\n",
              report.str().c_str());

  // Operator's eyes go to two numbers: violations (must be zero) and the
  // headroom distribution of the hot classes (how much provisioned
  // headroom is actually in use — the p99 matters more than the worst
  // single packet).
  std::printf("== Headroom by class (share of bound in use, cycles) ==\n");
  for (const auto& cls : report.classes) {
    if (cls.packets == 0) continue;
    const auto& cyc = cls.metrics[perf::metric_index(perf::Metric::kCycles)];
    std::printf("%-66s p50 %5.1f%%  p99 %5.1f%%  worst %5.1f%%\n",
                cls.input_class.c_str(),
                static_cast<double>(cyc.headroom_pm.p50) / 10.0,
                static_cast<double>(cyc.headroom_pm.p99) / 10.0,
                cyc.max_utilization() * 100.0);
  }

  std::printf(
      "\nviolations: %llu -> the provisioned bounds hold under real "
      "traffic;\nthe worst packet of the hottest class is the one to keep "
      "an eye on\nafter the next config push.\n",
      static_cast<unsigned long long>(report.violations));
  return report.violations == 0 ? 0 : 1;
}
