// Quickstart: generate a performance contract for an NF and use it.
//
// This walks the full BOLT workflow on the paper's running example (the
// simplified LPM router of §2.1):
//   1. wire up an NF instance (stateless IR program + stateful library),
//   2. run the contract generator (symbolic execution -> solving -> replay),
//   3. read the contract like the paper's Table 1,
//   4. bind PCVs to predict concrete workloads,
//   5. cross-check a prediction against a real packet.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/packet_builder.h"

using namespace bolt;

int main() {
  // 1. An NF instance: the stateless program plus its stateful library
  //    (a Patricia-trie LPM), wired through the dispatcher.
  perf::PcvRegistry pcvs;
  const core::NfInstance router = core::make_simple_lpm(pcvs);
  auto& trie = router.state_as<dslib::LpmTrieState>().trie();
  trie.insert(0x0a000000, 8, 1);   // 10.0.0.0/8      -> port 1
  trie.insert(0x0a630000, 16, 2);  // 10.99.0.0/16    -> port 2

  // 2. Generate the contract. The running example ignores the packet-I/O
  //    framework, exactly like the paper's §2.
  core::BoltOptions options;
  options.framework = nf::framework_none();
  core::ContractGenerator generator(pcvs, options);
  const core::GenerationResult result = generator.generate(router.analysis());

  std::printf("== The generated contract (paper Table 1) ==\n\n%s\n",
              result.contract.str_all(pcvs).c_str());
  std::printf("Paths explored: %zu, contract entries: %zu\n\n",
              result.total_paths, result.contract.entries().size());

  // 3. Predict without running: what does a packet matching a /16 cost?
  const perf::ContractEntry& valid =
      result.contract.require("valid | lpm.get=lookup");
  perf::PcvBinding l16;
  l16.set(pcvs.require("l"), 16);
  std::printf("== Predictions ==\n");
  std::printf("valid packet, matched prefix length 16: %lld instructions, "
              "%lld memory accesses, <= %lld cycles\n",
              static_cast<long long>(
                  valid.perf.get(perf::Metric::kInstructions).eval(l16)),
              static_cast<long long>(
                  valid.perf.get(perf::Metric::kMemoryAccesses).eval(l16)),
              static_cast<long long>(
                  valid.perf.get(perf::Metric::kCycles).eval(l16)));

  // 4. Cross-check against a real execution.
  auto runner = router.make_runner(nf::framework_none());
  net::PacketBuilder b;
  b.ipv4(net::Ipv4Address::from_octets(192, 0, 2, 1),
         net::Ipv4Address::from_octets(10, 99, 1, 2))  // matches the /16
      .udp(4000, 80)
      .timestamp_ns(1'000'000'000);
  net::Packet packet = b.build();
  const ir::RunResult run = runner->process(packet);
  std::printf("real execution of such a packet:        %llu instructions, "
              "%llu memory accesses (class '%s', out port %llu)\n",
              static_cast<unsigned long long>(run.instructions),
              static_cast<unsigned long long>(run.mem_accesses),
              run.class_label().c_str(),
              static_cast<unsigned long long>(run.out_port));

  std::printf("\nThe prediction dominates the measurement (the contract's\n"
              "essential property) and is tight: the only slack is the\n"
              "deliberate bit-level coalescing inside lpmGet (paper §3.2).\n");
  return 0;
}
